package rml

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/orte/names"
)

func pair(t *testing.T) (*Router, *Endpoint, *Endpoint) {
	t.Helper()
	r := NewRouter()
	a, err := r.Register(names.HNP)
	if err != nil {
		t.Fatalf("Register HNP: %v", err)
	}
	b, err := r.Register(names.Daemon(0))
	if err != nil {
		t.Fatalf("Register daemon: %v", err)
	}
	return r, a, b
}

func TestSendRecv(t *testing.T) {
	_, hnp, orted := pair(t)
	if err := hnp.Send(orted.Name(), TagSnapcRequest, []byte("ckpt job 1")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	m, err := orted.Recv(TagSnapcRequest)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if m.From != names.HNP || string(m.Data) != "ckpt job 1" {
		t.Errorf("message = %+v", m)
	}
}

func TestRecvMatchesTag(t *testing.T) {
	_, hnp, orted := pair(t)
	// Two messages with different tags; receive the second tag first.
	if err := hnp.Send(orted.Name(), TagSnapcRequest, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := hnp.Send(orted.Name(), TagFilemRequest, []byte("b")); err != nil {
		t.Fatal(err)
	}
	m, err := orted.Recv(TagFilemRequest)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if string(m.Data) != "b" {
		t.Errorf("got %q, want b", m.Data)
	}
	m, err = orted.Recv(TagSnapcRequest)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if string(m.Data) != "a" {
		t.Errorf("got %q, want a", m.Data)
	}
	if orted.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", orted.Pending())
	}
}

func TestRecvFrom(t *testing.T) {
	r := NewRouter()
	hnp, _ := r.Register(names.HNP)
	d0, _ := r.Register(names.Daemon(0))
	d1, _ := r.Register(names.Daemon(1))

	if err := d1.Send(names.HNP, TagSnapcAck, []byte("from d1")); err != nil {
		t.Fatal(err)
	}
	if err := d0.Send(names.HNP, TagSnapcAck, []byte("from d0")); err != nil {
		t.Fatal(err)
	}
	m, err := hnp.RecvFrom(names.Daemon(0), TagSnapcAck)
	if err != nil {
		t.Fatalf("RecvFrom: %v", err)
	}
	if string(m.Data) != "from d0" {
		t.Errorf("got %q, want from d0", m.Data)
	}
}

func TestOrderingPerPair(t *testing.T) {
	_, hnp, orted := pair(t)
	for i := 0; i < 100; i++ {
		if err := hnp.Send(orted.Name(), TagUser, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		m, err := orted.Recv(TagUser)
		if err != nil {
			t.Fatal(err)
		}
		if m.Data[0] != byte(i) {
			t.Fatalf("message %d arrived out of order (got %d)", i, m.Data[0])
		}
	}
}

func TestBlockingRecvWakesOnSend(t *testing.T) {
	_, hnp, orted := pair(t)
	got := make(chan Message, 1)
	go func() {
		m, err := orted.Recv(TagJobCtl)
		if err != nil {
			t.Errorf("Recv: %v", err)
			return
		}
		got <- m
	}()
	time.Sleep(10 * time.Millisecond)
	if err := hnp.Send(orted.Name(), TagJobCtl, []byte("launch")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if string(m.Data) != "launch" {
			t.Errorf("got %q", m.Data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked receive never woke")
	}
}

func TestRecvTimeout(t *testing.T) {
	_, _, orted := pair(t)
	start := time.Now()
	_, err := orted.RecvTimeout(TagUser, 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) > time.Second {
		t.Error("timeout took far too long")
	}
}

func TestSendToUnknownPeer(t *testing.T) {
	_, hnp, _ := pair(t)
	err := hnp.Send(names.Proc(9, 9), TagUser, nil)
	if !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestDuplicateRegistration(t *testing.T) {
	r := NewRouter()
	if _, err := r.Register(names.HNP); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(names.HNP); err == nil {
		t.Error("duplicate registration succeeded")
	}
}

func TestDeregisterFailsBlockedRecv(t *testing.T) {
	r := NewRouter()
	_, _ = r.Register(names.HNP)
	orted, _ := r.Register(names.Daemon(0))
	errc := make(chan error, 1)
	go func() {
		_, err := orted.Recv(TagUser)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	r.Deregister(names.Daemon(0))
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not fail after Deregister")
	}
}

func TestRouterClose(t *testing.T) {
	r, hnp, orted := pair(t)
	r.Close()
	if err := hnp.Send(orted.Name(), TagUser, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after Close: err = %v, want ErrClosed", err)
	}
	if _, err := orted.Recv(TagUser); !errors.Is(err, ErrClosed) {
		t.Errorf("Recv after Close: err = %v, want ErrClosed", err)
	}
	if _, err := r.Register(names.Proc(1, 0)); !errors.Is(err, ErrClosed) {
		t.Errorf("Register after Close: err = %v, want ErrClosed", err)
	}
	r.Close() // double close must be safe
}

func TestJSONRoundTrip(t *testing.T) {
	_, hnp, orted := pair(t)
	type ckptReq struct {
		Job  int  `json:"job"`
		Term bool `json:"term"`
	}
	if err := hnp.SendJSON(orted.Name(), TagSnapcRequest, ckptReq{Job: 5, Term: true}); err != nil {
		t.Fatalf("SendJSON: %v", err)
	}
	var got ckptReq
	from, err := orted.RecvJSON(TagSnapcRequest, &got)
	if err != nil {
		t.Fatalf("RecvJSON: %v", err)
	}
	if from != names.HNP || got.Job != 5 || !got.Term {
		t.Errorf("from=%v got=%+v", from, got)
	}
}

func TestRecvJSONBadPayload(t *testing.T) {
	_, hnp, orted := pair(t)
	if err := hnp.Send(orted.Name(), TagSnapcRequest, []byte("{nope")); err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if _, err := orted.RecvJSON(TagSnapcRequest, &v); err == nil {
		t.Error("RecvJSON accepted malformed payload")
	}
}

func TestConcurrentFanIn(t *testing.T) {
	r := NewRouter()
	hnp, _ := r.Register(names.HNP)
	const daemons = 16
	const per = 50
	var wg sync.WaitGroup
	for d := 0; d < daemons; d++ {
		ep, err := r.Register(names.Daemon(d))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(ep *Endpoint, d int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := ep.Send(names.HNP, TagSnapcAck, []byte(fmt.Sprintf("%d:%d", d, i))); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}(ep, d)
	}
	received := 0
	for received < daemons*per {
		if _, err := hnp.RecvTimeout(TagSnapcAck, 5*time.Second); err != nil {
			t.Fatalf("RecvTimeout after %d messages: %v", received, err)
		}
		received++
	}
	wg.Wait()
	if hnp.Pending() != 0 {
		t.Errorf("Pending = %d after draining", hnp.Pending())
	}
}
