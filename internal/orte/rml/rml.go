// Package rml is the ORTE Runtime Messaging Layer: the out-of-band
// control channel connecting the HNP (mpirun), the per-node daemons
// (orteds) and the application coordinators. All SNAPC traffic from the
// paper's Figure 1 — checkpoint requests flowing down, acknowledgements
// and snapshot references flowing up — travels over this layer, kept
// strictly separate from the MPI point-to-point data path.
//
// Messages are tagged; receivers block on (tag) or (tag, sender). The
// router is an in-process switchboard, standing in for ORTE's TCP OOB:
// what matters to the reproduced design is addressing, tagging and
// ordering, all of which are preserved.
package rml

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/orte/names"
)

// Tag classifies a message's purpose, like ORTE's RML tags.
type Tag int

// Well-known tags used by the runtime and the SNAPC/FILEM frameworks.
const (
	TagSnapcRequest Tag = iota + 1 // HNP -> orted: initiate local checkpoints
	TagSnapcAck                    // orted -> HNP: local snapshots finished
	TagSnapcApp                    // orted -> app coordinator: checkpoint this proc
	TagSnapcAppAck                 // app coordinator -> orted: done
	TagFilemRequest                // file movement request
	TagFilemAck                    // file movement complete
	TagJobCtl                      // job control (launch, terminate)
	TagCRCP                        // checkpoint coordination control traffic
	TagHeartbeat                   // orted -> HNP: liveness beacon
	TagUser                        // free for tests and tools
)

// Message is one unit of control traffic.
type Message struct {
	From names.Name
	Tag  Tag
	Data []byte
}

// Errors returned by endpoint operations.
var (
	// ErrClosed: the endpoint (or whole router) has shut down.
	ErrClosed = errors.New("rml: endpoint closed")
	// ErrUnknownPeer: no endpoint is registered under the target name.
	ErrUnknownPeer = errors.New("rml: unknown peer")
	// ErrTimeout: a bounded receive expired.
	ErrTimeout = errors.New("rml: receive timed out")
)

// Router is the in-process switchboard. It is safe for concurrent use.
type Router struct {
	mu         sync.Mutex
	boxes      map[names.Name]*Endpoint
	closed     bool
	inject     func(point string) error
	sendInject func(point string) error
}

// SetInject installs a fault-injection hook consulted on every Send at
// point "rml.deliver:<to>". A firing hook drops the message silently —
// the lost-datagram failure mode the coordinator deadlines exist for.
func (r *Router) SetInject(fn func(point string) error) {
	r.mu.Lock()
	r.inject = fn
	r.mu.Unlock()
}

// SetSendInject installs a fault-injection hook consulted on every Send
// at point "rml.send:<to>". Unlike SetInject's silent drop, a firing
// hook here is returned to the sender as a transport error — the flaky
// NIC / transient EHOSTUNREACH failure mode the heartbeat miss budget
// must tolerate without self-declaring the node dead.
func (r *Router) SetSendInject(fn func(point string) error) {
	r.mu.Lock()
	r.sendInject = fn
	r.mu.Unlock()
}

// NewRouter returns an empty router.
func NewRouter() *Router {
	return &Router{boxes: make(map[names.Name]*Endpoint)}
}

// Register creates the endpoint for name. Registering a name twice is an
// error: runtime entities are unique.
func (r *Router) Register(name names.Name) (*Endpoint, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	if _, dup := r.boxes[name]; dup {
		return nil, fmt.Errorf("rml: name %v already registered", name)
	}
	e := &Endpoint{router: r, name: name}
	e.cond = sync.NewCond(&e.mu)
	r.boxes[name] = e
	return e, nil
}

// Deregister removes name's endpoint, failing any blocked receives.
func (r *Router) Deregister(name names.Name) {
	r.mu.Lock()
	e := r.boxes[name]
	delete(r.boxes, name)
	r.mu.Unlock()
	if e != nil {
		e.close()
	}
}

// Close shuts the router down, closing every endpoint.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	boxes := make([]*Endpoint, 0, len(r.boxes))
	for _, e := range r.boxes {
		boxes = append(boxes, e)
	}
	r.boxes = make(map[names.Name]*Endpoint)
	r.mu.Unlock()
	for _, e := range boxes {
		e.close()
	}
}

// lookup returns the endpoint for name.
func (r *Router) lookup(name names.Name) (*Endpoint, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	e, ok := r.boxes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownPeer, name)
	}
	return e, nil
}

// Endpoint is one entity's mailbox. Receives match by tag (and
// optionally sender); sends are non-blocking and ordered per
// sender/receiver pair, like the OOB TCP channel they stand in for.
type Endpoint struct {
	router *Router
	name   names.Name

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
}

// Name returns the endpoint's registered name.
func (e *Endpoint) Name() names.Name { return e.name }

func (e *Endpoint) close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// Send delivers data to the named peer under tag.
func (e *Endpoint) Send(to names.Name, tag Tag, data []byte) error {
	dst, err := e.router.lookup(to)
	if err != nil {
		return err
	}
	e.router.mu.Lock()
	inject := e.router.inject
	sendInject := e.router.sendInject
	e.router.mu.Unlock()
	if sendInject != nil {
		if err := sendInject(fmt.Sprintf("rml.send:%v", to)); err != nil {
			return fmt.Errorf("rml: send to %v: %w", to, err)
		}
	}
	if inject != nil {
		if err := inject(fmt.Sprintf("rml.deliver:%v", to)); err != nil {
			return nil // silently dropped in flight, like a lost datagram
		}
	}
	msg := Message{From: e.name, Tag: tag, Data: data}
	dst.mu.Lock()
	defer dst.mu.Unlock()
	if dst.closed {
		return fmt.Errorf("rml: send to %v: %w", to, ErrClosed)
	}
	dst.queue = append(dst.queue, msg)
	dst.cond.Broadcast()
	return nil
}

// SendJSON marshals v as JSON and sends it.
func (e *Endpoint) SendJSON(to names.Name, tag Tag, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("rml: marshal for %v tag %d: %w", to, tag, err)
	}
	return e.Send(to, tag, data)
}

// match finds and removes the first queued message satisfying pred.
// Caller holds e.mu.
func (e *Endpoint) matchLocked(pred func(Message) bool) (Message, bool) {
	for i, m := range e.queue {
		if pred(m) {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			return m, true
		}
	}
	return Message{}, false
}

// recv blocks until a message matching pred arrives, the endpoint
// closes, or the deadline (if nonzero) passes.
func (e *Endpoint) recv(pred func(Message) bool, timeout time.Duration) (Message, error) {
	var timer *time.Timer
	expired := false
	if timeout > 0 {
		timer = time.AfterFunc(timeout, func() {
			e.mu.Lock()
			expired = true
			e.cond.Broadcast()
			e.mu.Unlock()
		})
		defer timer.Stop()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if m, ok := e.matchLocked(pred); ok {
			return m, nil
		}
		if e.closed {
			return Message{}, ErrClosed
		}
		if expired {
			return Message{}, fmt.Errorf("rml: recv on %v: %w", e.name, ErrTimeout)
		}
		e.cond.Wait()
	}
}

// Recv blocks for the next message with the given tag from any sender.
func (e *Endpoint) Recv(tag Tag) (Message, error) {
	return e.recv(func(m Message) bool { return m.Tag == tag }, 0)
}

// RecvTimeout is Recv with an upper bound on the wait.
func (e *Endpoint) RecvTimeout(tag Tag, timeout time.Duration) (Message, error) {
	return e.recv(func(m Message) bool { return m.Tag == tag }, timeout)
}

// RecvFrom blocks for the next message with the given tag from a
// specific sender.
func (e *Endpoint) RecvFrom(from names.Name, tag Tag) (Message, error) {
	return e.recv(func(m Message) bool { return m.Tag == tag && m.From == from }, 0)
}

// RecvFromTimeout is RecvFrom with an upper bound on the wait.
func (e *Endpoint) RecvFromTimeout(from names.Name, tag Tag, timeout time.Duration) (Message, error) {
	return e.recv(func(m Message) bool { return m.Tag == tag && m.From == from }, timeout)
}

// RecvJSON receives the next message with tag and unmarshals it into v,
// returning the sender.
func (e *Endpoint) RecvJSON(tag Tag, v any) (names.Name, error) {
	m, err := e.Recv(tag)
	if err != nil {
		return names.Name{}, err
	}
	if err := json.Unmarshal(m.Data, v); err != nil {
		return m.From, fmt.Errorf("rml: unmarshal tag %d from %v: %w", tag, m.From, err)
	}
	return m.From, nil
}

// RecvJSONTimeout is RecvJSON with an upper bound on the wait.
func (e *Endpoint) RecvJSONTimeout(tag Tag, v any, timeout time.Duration) (names.Name, error) {
	m, err := e.RecvTimeout(tag, timeout)
	if err != nil {
		return names.Name{}, err
	}
	if err := json.Unmarshal(m.Data, v); err != nil {
		return m.From, fmt.Errorf("rml: unmarshal tag %d from %v: %w", tag, m.From, err)
	}
	return m.From, nil
}

// Pending returns the number of queued, unreceived messages.
func (e *Endpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue)
}
