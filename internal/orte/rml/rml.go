// Package rml is the ORTE Runtime Messaging Layer: the out-of-band
// control channel connecting the HNP (mpirun), the per-node daemons
// (orteds) and the application coordinators. All SNAPC traffic from the
// paper's Figure 1 — checkpoint requests flowing down, acknowledgements
// and snapshot references flowing up — travels over this layer, kept
// strictly separate from the MPI point-to-point data path.
//
// Messages are tagged; receivers block on (tag) or (tag, sender). The
// router is an in-process switchboard, standing in for ORTE's TCP OOB:
// what matters to the reproduced design is addressing, tagging and
// ordering, all of which are preserved.
//
// The switchboard is built for thousand-endpoint clusters: name
// resolution is sharded so concurrent senders do not serialize on one
// router lock, each mailbox keeps a per-tag queue so a receive scans
// only messages of its own tag, and SendBatch amortizes per-message
// locking when a coordinator fans the same kind of traffic out to (or
// relays it through) many peers at once.
package rml

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/errdef"
	"repro/internal/orte/names"
)

// Tag classifies a message's purpose, like ORTE's RML tags.
type Tag int

// Well-known tags used by the runtime and the SNAPC/FILEM frameworks.
const (
	TagSnapcRequest Tag = iota + 1 // HNP -> orted: initiate local checkpoints
	TagSnapcAck                    // orted -> HNP: local snapshots finished
	TagSnapcApp                    // orted -> app coordinator: checkpoint this proc
	TagSnapcAppAck                 // app coordinator -> orted: done
	TagFilemRequest                // file movement request
	TagFilemAck                    // file movement complete
	TagJobCtl                      // job control (launch, terminate)
	TagCRCP                        // checkpoint coordination control traffic
	TagHeartbeat                   // orted -> HNP: liveness beacon
	TagUser                        // free for tests and tools
)

// Message is one unit of control traffic.
type Message struct {
	From names.Name
	Tag  Tag
	Data []byte
}

// Errors returned by endpoint operations. They alias the shared
// taxonomy in errdef, so errors.Is matches across package boundaries.
var (
	// ErrClosed: the endpoint (or whole router) has shut down.
	ErrClosed = errdef.ErrClosed
	// ErrUnknownPeer: no endpoint is registered under the target name.
	ErrUnknownPeer = errdef.ErrUnknownPeer
	// ErrTimeout: a bounded receive expired.
	ErrTimeout = errdef.ErrTimeout
)

// routerShards fixes the name-table fan-out. Shard count only bounds
// lock contention, not capacity, so a modest power of two is enough for
// the 1k–10k endpoints the simulator runs.
const routerShards = 32

type routerShard struct {
	mu    sync.RWMutex
	boxes map[names.Name]*Endpoint
}

// Router is the in-process switchboard. It is safe for concurrent use.
type Router struct {
	// mu guards closed and the fault-injection hooks; the name table
	// itself lives in the shards so lookups by concurrent senders only
	// contend when their targets hash together.
	mu         sync.RWMutex
	closed     bool
	inject     func(point string) error
	sendInject func(point string) error

	shards [routerShards]routerShard
}

func (r *Router) shard(name names.Name) *routerShard {
	// Knuth multiplicative hash over the (job, vpid) pair; daemons of one
	// job spread across shards because vpid varies.
	h := uint64(uint32(name.Job))*2654435761 + uint64(uint32(name.Vpid))*40503
	return &r.shards[h%routerShards]
}

// SetInject installs a fault-injection hook consulted on every Send at
// point "rml.deliver:<to>". A firing hook drops the message silently —
// the lost-datagram failure mode the coordinator deadlines exist for.
func (r *Router) SetInject(fn func(point string) error) {
	r.mu.Lock()
	r.inject = fn
	r.mu.Unlock()
}

// SetSendInject installs a fault-injection hook consulted on every Send
// at point "rml.send:<to>". Unlike SetInject's silent drop, a firing
// hook here is returned to the sender as a transport error — the flaky
// NIC / transient EHOSTUNREACH failure mode the heartbeat miss budget
// must tolerate without self-declaring the node dead.
func (r *Router) SetSendInject(fn func(point string) error) {
	r.mu.Lock()
	r.sendInject = fn
	r.mu.Unlock()
}

// NewRouter returns an empty router.
func NewRouter() *Router {
	r := &Router{}
	for i := range r.shards {
		r.shards[i].boxes = make(map[names.Name]*Endpoint)
	}
	return r
}

// Register creates the endpoint for name. Registering a name twice is an
// error: runtime entities are unique.
func (r *Router) Register(name names.Name) (*Endpoint, error) {
	r.mu.RLock()
	closed := r.closed
	r.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	s := r.shard(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.boxes[name]; dup {
		return nil, fmt.Errorf("rml: name %v already registered", name)
	}
	e := &Endpoint{router: r, name: name, queues: make(map[Tag][]Message)}
	e.cond = sync.NewCond(&e.mu)
	s.boxes[name] = e
	return e, nil
}

// Deregister removes name's endpoint, failing any blocked receives.
func (r *Router) Deregister(name names.Name) {
	s := r.shard(name)
	s.mu.Lock()
	e := s.boxes[name]
	delete(s.boxes, name)
	s.mu.Unlock()
	if e != nil {
		e.close()
	}
}

// Close shuts the router down, closing every endpoint.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		boxes := make([]*Endpoint, 0, len(s.boxes))
		for _, e := range s.boxes {
			boxes = append(boxes, e)
		}
		s.boxes = make(map[names.Name]*Endpoint)
		s.mu.Unlock()
		for _, e := range boxes {
			e.close()
		}
	}
}

// lookup returns the endpoint for name.
func (r *Router) lookup(name names.Name) (*Endpoint, error) {
	r.mu.RLock()
	closed := r.closed
	r.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	s := r.shard(name)
	s.mu.RLock()
	e, ok := s.boxes[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownPeer, name)
	}
	return e, nil
}

// hooks snapshots the fault-injection hooks.
func (r *Router) hooks() (inject, sendInject func(string) error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.inject, r.sendInject
}

// Endpoint is one entity's mailbox. Receives match by tag (and
// optionally sender); sends are non-blocking and ordered per
// sender/receiver pair, like the OOB TCP channel they stand in for.
// Internally the mailbox keeps one FIFO per tag, so heavy traffic on
// one tag (heartbeats, say) never slows a receive on another.
type Endpoint struct {
	router *Router
	name   names.Name

	mu      sync.Mutex
	cond    *sync.Cond
	queues  map[Tag][]Message
	pending int
	closed  bool
}

// Name returns the endpoint's registered name.
func (e *Endpoint) Name() names.Name { return e.name }

func (e *Endpoint) close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// deliver enqueues msg, waking blocked receivers. Caller must NOT hold
// e.mu.
func (e *Endpoint) deliver(msg Message) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("rml: send to %v: %w", e.name, ErrClosed)
	}
	e.queues[msg.Tag] = append(e.queues[msg.Tag], msg)
	e.pending++
	e.cond.Broadcast()
	return nil
}

// Send delivers data to the named peer under tag.
func (e *Endpoint) Send(to names.Name, tag Tag, data []byte) error {
	dst, err := e.router.lookup(to)
	if err != nil {
		return err
	}
	inject, sendInject := e.router.hooks()
	if sendInject != nil {
		if err := sendInject(fmt.Sprintf("rml.send:%v", to)); err != nil {
			return fmt.Errorf("rml: send to %v: %w", to, err)
		}
	}
	if inject != nil {
		if err := inject(fmt.Sprintf("rml.deliver:%v", to)); err != nil {
			return nil // silently dropped in flight, like a lost datagram
		}
	}
	return dst.deliver(Message{From: e.name, Tag: tag, Data: data})
}

// SendJSON marshals v as JSON and sends it.
func (e *Endpoint) SendJSON(to names.Name, tag Tag, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("rml: marshal for %v tag %d: %w", to, tag, err)
	}
	return e.Send(to, tag, data)
}

// Outgoing is one element of a SendBatch: a (destination, tag, payload)
// triple.
type Outgoing struct {
	To   names.Name
	Tag  Tag
	Data []byte
}

// JSONOutgoing marshals v into an Outgoing, for building SendBatch
// argument slices.
func JSONOutgoing(to names.Name, tag Tag, v any) (Outgoing, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return Outgoing{}, fmt.Errorf("rml: marshal for %v tag %d: %w", to, tag, err)
	}
	return Outgoing{To: to, Tag: tag, Data: data}, nil
}

// SendBatch delivers a fan-out of messages, resolving each distinct
// destination once and taking each destination mailbox's lock once no
// matter how many messages it receives. Per-destination message order
// follows slice order, and the fault-injection hooks fire per message
// with the same semantics as Send. Delivery is attempted for every
// element even after a failure; the returned error joins the per-message
// failures (nil if all delivered or dropped in flight).
func (e *Endpoint) SendBatch(msgs []Outgoing) error {
	if len(msgs) == 0 {
		return nil
	}
	inject, sendInject := e.router.hooks()
	var errs []error
	// Group into per-destination runs without disturbing slice order:
	// index lists per destination, then one lookup + one delivery batch
	// per destination.
	order := make([]names.Name, 0, 8)
	byDst := make(map[names.Name][]int, 8)
	for i, m := range msgs {
		if _, seen := byDst[m.To]; !seen {
			order = append(order, m.To)
		}
		byDst[m.To] = append(byDst[m.To], i)
	}
	for _, to := range order {
		dst, err := e.router.lookup(to)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		batch := make([]Message, 0, len(byDst[to]))
		for _, i := range byDst[to] {
			m := msgs[i]
			if sendInject != nil {
				if err := sendInject(fmt.Sprintf("rml.send:%v", to)); err != nil {
					errs = append(errs, fmt.Errorf("rml: send to %v: %w", to, err))
					continue
				}
			}
			if inject != nil {
				if err := inject(fmt.Sprintf("rml.deliver:%v", to)); err != nil {
					continue // silently dropped in flight
				}
			}
			batch = append(batch, Message{From: e.name, Tag: m.Tag, Data: m.Data})
		}
		if len(batch) == 0 {
			continue
		}
		dst.mu.Lock()
		if dst.closed {
			dst.mu.Unlock()
			errs = append(errs, fmt.Errorf("rml: send to %v: %w", to, ErrClosed))
			continue
		}
		for _, msg := range batch {
			dst.queues[msg.Tag] = append(dst.queues[msg.Tag], msg)
		}
		dst.pending += len(batch)
		dst.cond.Broadcast()
		dst.mu.Unlock()
	}
	return errors.Join(errs...)
}

// match finds and removes the first queued message under tag satisfying
// pred (nil pred matches any). Caller holds e.mu.
func (e *Endpoint) matchLocked(tag Tag, pred func(Message) bool) (Message, bool) {
	q := e.queues[tag]
	for i, m := range q {
		if pred == nil || pred(m) {
			e.queues[tag] = append(q[:i:i], q[i+1:]...)
			e.pending--
			return m, true
		}
	}
	return Message{}, false
}

// recv blocks until a message under tag matching pred arrives, the
// endpoint closes, or the deadline (if nonzero) passes.
func (e *Endpoint) recv(tag Tag, pred func(Message) bool, timeout time.Duration) (Message, error) {
	var timer *time.Timer
	expired := false
	if timeout > 0 {
		timer = time.AfterFunc(timeout, func() {
			e.mu.Lock()
			expired = true
			e.cond.Broadcast()
			e.mu.Unlock()
		})
		defer timer.Stop()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if m, ok := e.matchLocked(tag, pred); ok {
			return m, nil
		}
		if e.closed {
			return Message{}, ErrClosed
		}
		if expired {
			return Message{}, fmt.Errorf("rml: recv on %v: %w", e.name, ErrTimeout)
		}
		e.cond.Wait()
	}
}

// Recv blocks for the next message with the given tag from any sender.
func (e *Endpoint) Recv(tag Tag) (Message, error) {
	return e.recv(tag, nil, 0)
}

// RecvTimeout is Recv with an upper bound on the wait.
func (e *Endpoint) RecvTimeout(tag Tag, timeout time.Duration) (Message, error) {
	return e.recv(tag, nil, timeout)
}

// RecvFrom blocks for the next message with the given tag from a
// specific sender.
func (e *Endpoint) RecvFrom(from names.Name, tag Tag) (Message, error) {
	return e.recv(tag, func(m Message) bool { return m.From == from }, 0)
}

// RecvFromTimeout is RecvFrom with an upper bound on the wait.
func (e *Endpoint) RecvFromTimeout(from names.Name, tag Tag, timeout time.Duration) (Message, error) {
	return e.recv(tag, func(m Message) bool { return m.From == from }, timeout)
}

// RecvWhere blocks for the next message with the given tag satisfying
// pred, leaving non-matching messages queued for other receivers. This
// is how concurrent coordinators share one mailbox: when several jobs'
// capture acks interleave on the HNP endpoint, each coordinator matches
// only its own job's traffic (typically by decoding a header out of
// Message.Data) instead of stealing a sibling's.
func (e *Endpoint) RecvWhere(tag Tag, pred func(Message) bool, timeout time.Duration) (Message, error) {
	return e.recv(tag, pred, timeout)
}

// RecvJSON receives the next message with tag and unmarshals it into v,
// returning the sender.
func (e *Endpoint) RecvJSON(tag Tag, v any) (names.Name, error) {
	m, err := e.Recv(tag)
	if err != nil {
		return names.Name{}, err
	}
	if err := json.Unmarshal(m.Data, v); err != nil {
		return m.From, fmt.Errorf("rml: unmarshal tag %d from %v: %w", tag, m.From, err)
	}
	return m.From, nil
}

// RecvJSONTimeout is RecvJSON with an upper bound on the wait.
func (e *Endpoint) RecvJSONTimeout(tag Tag, v any, timeout time.Duration) (names.Name, error) {
	m, err := e.RecvTimeout(tag, timeout)
	if err != nil {
		return names.Name{}, err
	}
	if err := json.Unmarshal(m.Data, v); err != nil {
		return m.From, fmt.Errorf("rml: unmarshal tag %d from %v: %w", tag, m.From, err)
	}
	return m.From, nil
}

// Pending returns the number of queued, unreceived messages.
func (e *Endpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pending
}
