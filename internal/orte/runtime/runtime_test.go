package runtime

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core/snapshot"
	"repro/internal/mca"
	"repro/internal/ompi"
	"repro/internal/ompi/coll"
	"repro/internal/orte/plm"
	"repro/internal/orte/snapc"
	"repro/internal/trace"
	"repro/internal/vfs"
)

func fourNodeCluster(t *testing.T, params *mca.Params) *Cluster {
	t.Helper()
	c, err := New(Config{
		Nodes: []plm.NodeSpec{
			{Name: "n0", Slots: 2}, {Name: "n1", Slots: 2},
			{Name: "n2", Slots: 2}, {Name: "n3", Slots: 2},
		},
		Params: params,
		Ins:    trace.New(),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// stencilApp is a 1-D heat-equation-style stencil: each rank owns a
// block, exchanges halos with neighbours every step, and tracks a
// residual via Allreduce every few steps. It terminates after `steps`
// iterations, or runs until checkpointed when steps == 0 (ended by a
// terminate directive), or runs `extra` steps after a (re)start.
type stencilApp struct {
	steps int
	extra int

	started   bool
	startIter int
	state     struct {
		Iter int
		Cell []float64
	}
}

func newStencilFactory(steps, extra int) (func(rank int) ompi.App, *[]*stencilApp) {
	apps := &[]*stencilApp{}
	return func(rank int) ompi.App {
		a := &stencilApp{steps: steps, extra: extra}
		*apps = append(*apps, a)
		return a
	}, apps
}

func (a *stencilApp) Setup(p *ompi.Proc) error {
	if a.state.Cell == nil {
		a.state.Cell = make([]float64, 8)
		for i := range a.state.Cell {
			a.state.Cell[i] = float64(p.Rank()*8 + i)
		}
	}
	return p.RegisterState("stencil", &a.state)
}

func (a *stencilApp) Step(p *ompi.Proc) (bool, error) {
	if !a.started {
		a.started = true
		a.startIter = a.state.Iter
	}
	n := p.Size()
	rank := p.Rank()
	right := (rank + 1) % n
	left := (rank - 1 + n) % n
	// Halo exchange: send the edge cells both ways.
	if _, err := p.Isend(right, 1, coll.Float64sToBytes(a.state.Cell[len(a.state.Cell)-1:])); err != nil {
		return false, err
	}
	if _, err := p.Isend(left, 2, coll.Float64sToBytes(a.state.Cell[:1])); err != nil {
		return false, err
	}
	fromLeft, _, err := p.Recv(left, 1)
	if err != nil {
		return false, err
	}
	fromRight, _, err := p.Recv(right, 2)
	if err != nil {
		return false, err
	}
	l, err := coll.BytesToFloat64s(fromLeft)
	if err != nil {
		return false, err
	}
	r, err := coll.BytesToFloat64s(fromRight)
	if err != nil {
		return false, err
	}
	// Jacobi-ish smoothing with halos.
	next := make([]float64, len(a.state.Cell))
	for i := range next {
		lv := l[0]
		if i > 0 {
			lv = a.state.Cell[i-1]
		}
		rv := r[0]
		if i < len(next)-1 {
			rv = a.state.Cell[i+1]
		}
		next[i] = (lv + a.state.Cell[i] + rv) / 3
	}
	a.state.Cell = next
	a.state.Iter++
	// Periodic residual reduction keeps collectives in the mix.
	if a.state.Iter%4 == 0 {
		if _, err := p.Allreduce(coll.Float64sToBytes([]float64{a.state.Cell[0]}), coll.SumFloat64); err != nil {
			return false, err
		}
	}
	switch {
	case a.steps > 0 && a.state.Iter >= a.steps:
		return true, nil
	case a.extra > 0 && a.state.Iter >= a.startIter+a.extra:
		return true, nil
	}
	return false, nil
}

func TestLaunchAndWait(t *testing.T) {
	c := fourNodeCluster(t, nil)
	factory, apps := newStencilFactory(10, 0)
	job, err := c.Launch(JobSpec{Name: "stencil", NP: 8, AppFactory: factory})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if err := job.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if !job.Done() {
		t.Error("Done = false after Wait")
	}
	for i, a := range *apps {
		if a.state.Iter != 10 {
			t.Errorf("app %d iter = %d", i, a.state.Iter)
		}
	}
	// Round-robin placement spread ranks across all four nodes.
	if got := len(job.Nodes()); got != 4 {
		t.Errorf("job spans %d nodes, want 4", got)
	}
}

func TestLaunchValidation(t *testing.T) {
	c := fourNodeCluster(t, nil)
	if _, err := c.Launch(JobSpec{NP: 0, AppFactory: func(int) ompi.App { return nil }}); err == nil {
		t.Error("Launch accepted NP=0")
	}
	if _, err := c.Launch(JobSpec{NP: 2}); err == nil {
		t.Error("Launch accepted nil factory")
	}
	if _, err := c.Launch(JobSpec{NP: 100, AppFactory: func(int) ompi.App { return nil }}); err == nil {
		t.Error("Launch oversubscribed the cluster")
	}
}

func TestCheckpointContinueWholePipeline(t *testing.T) {
	c := fourNodeCluster(t, nil)
	factory, apps := newStencilFactory(0, 0) // unbounded; we'll watch Checkpoints()
	job, err := c.Launch(JobSpec{Name: "stencil", NP: 6, Args: []string{"-grid", "8"}, AppFactory: factory})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	res, err := c.CheckpointJob(job.JobID(), snapc.Options{})
	if err != nil {
		t.Fatalf("CheckpointJob: %v", err)
	}
	// The run continues; terminate it with a second checkpoint.
	res2, err := c.CheckpointJob(job.JobID(), snapc.Options{Terminate: true})
	if err != nil {
		t.Fatalf("second CheckpointJob: %v", err)
	}
	if err := job.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if res.Interval != 0 || res2.Interval != 1 {
		t.Errorf("intervals = %d, %d", res.Interval, res2.Interval)
	}
	// Global snapshot has both intervals, each fully populated.
	ref := res.Ref
	ivs, err := snapshot.Intervals(ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 2 {
		t.Fatalf("intervals on stable storage = %v", ivs)
	}
	for _, iv := range ivs {
		meta, err := snapshot.ReadGlobal(ref, iv)
		if err != nil {
			t.Fatalf("ReadGlobal(%d): %v", iv, err)
		}
		if meta.NumProcs != 6 || meta.AppName != "stencil" {
			t.Errorf("meta = %+v", meta)
		}
		if len(meta.AppArgs) != 2 || meta.AppArgs[0] != "-grid" {
			t.Errorf("AppArgs = %v", meta.AppArgs)
		}
		for _, pe := range meta.Procs {
			lref := snapshot.LocalRefIn(ref, iv, pe)
			if _, err := snapshot.ReadLocal(lref); err != nil {
				t.Errorf("interval %d rank %d: %v", iv, pe.Vpid, err)
			}
		}
	}
	_ = apps
}

func TestCheckpointTerminateRestartSameCluster(t *testing.T) {
	c := fourNodeCluster(t, nil)
	factory, _ := newStencilFactory(0, 0)
	job, err := c.Launch(JobSpec{Name: "stencil", NP: 4, AppFactory: factory})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	res, err := c.CheckpointJob(job.JobID(), snapc.Options{Terminate: true})
	if err != nil {
		t.Fatalf("CheckpointJob: %v", err)
	}
	if err := job.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}

	factory2, apps2 := newStencilFactory(0, 7)
	job2, err := c.Restart(res.Ref, res.Interval, factory2)
	if err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if err := job2.Wait(); err != nil {
		t.Fatalf("restarted Wait: %v", err)
	}
	// Every restarted rank resumed from the checkpointed iteration and
	// ran 7 more steps; iterations agree across ranks (uniform cut).
	base := (*apps2)[0].startIter
	for i, a := range *apps2 {
		if a.startIter != base {
			t.Errorf("app %d resumed at %d, others at %d", i, a.startIter, base)
		}
		if a.state.Iter != base+7 {
			t.Errorf("app %d iter = %d, want %d", i, a.state.Iter, base+7)
		}
		if len(a.state.Cell) != 8 {
			t.Errorf("app %d lost its cells", i)
		}
	}
}

// TestRestartMatchesFaultFreeRun is the correctness core: a run that is
// checkpointed, killed and restarted must produce exactly the state of
// an uninterrupted run of the same length.
func TestRestartMatchesFaultFreeRun(t *testing.T) {
	const np = 4
	// Fault-free reference run to a fixed step count.
	ref := fourNodeCluster(t, nil)
	refFactory, refApps := newStencilFactory(0, 0)
	refJob, err := ref.Launch(JobSpec{Name: "stencil", NP: np, AppFactory: refFactory})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run on a separate cluster.
	c := fourNodeCluster(t, nil)
	factory, _ := newStencilFactory(0, 0)
	job, err := c.Launch(JobSpec{Name: "stencil", NP: np, AppFactory: factory})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.CheckpointJob(job.JobID(), snapc.Options{Terminate: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	factory2, apps2 := newStencilFactory(0, 9)
	job2, err := c.Restart(res.Ref, res.Interval, factory2)
	if err != nil {
		t.Fatal(err)
	}
	if err := job2.Wait(); err != nil {
		t.Fatal(err)
	}
	finalIter := (*apps2)[0].state.Iter

	// Run the reference to the same total step count.
	_, err = ref.CheckpointJob(refJob.JobID(), snapc.Options{Terminate: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := refJob.Wait(); err != nil {
		t.Fatal(err)
	}
	// Now re-run the reference from scratch with a fixed step target.
	ref2 := fourNodeCluster(t, nil)
	ref2Factory, ref2Apps := newStencilFactory(finalIter, 0)
	ref2Job, err := ref2.Launch(JobSpec{Name: "stencil", NP: np, AppFactory: ref2Factory})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref2Job.Wait(); err != nil {
		t.Fatal(err)
	}
	_ = refApps
	for r := 0; r < np; r++ {
		got := (*apps2)[r].state.Cell
		want := (*ref2Apps)[r].state.Cell
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rank %d cell %d = %v, want %v (restart diverged)", r, i, got[i], want[i])
			}
		}
	}
}

func TestRestartOntoDifferentTopology(t *testing.T) {
	// Checkpoint on a 4-node cluster, restart on a 2-node cluster with
	// a different placement policy: the paper's migration scenario.
	c1 := fourNodeCluster(t, nil)
	factory, _ := newStencilFactory(0, 0)
	job, err := c1.Launch(JobSpec{Name: "stencil", NP: 4, AppFactory: factory})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c1.CheckpointJob(job.JobID(), snapc.Options{Terminate: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}

	params := mca.NewParams()
	params.Set("plm", "slurmsim")
	c2, err := New(Config{
		Nodes:  []plm.NodeSpec{{Name: "m0", Slots: 2}, {Name: "m1", Slots: 2}},
		Params: params,
		Stable: res.Ref.FS, // shared stable storage between clusters
		Ins:    trace.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	factory2, apps2 := newStencilFactory(0, 5)
	job2, err := c2.Restart(res.Ref, res.Interval, factory2)
	if err != nil {
		t.Fatalf("Restart on new topology: %v", err)
	}
	if err := job2.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	for i, a := range *apps2 {
		if a.state.Iter != a.startIter+5 {
			t.Errorf("app %d did not resume correctly: iter %d start %d", i, a.state.Iter, a.startIter)
		}
	}
	// The restarted job runs on the new cluster's nodes.
	for r := 0; r < 4; r++ {
		node := job2.NodeOf(r)
		if node != "m0" && node != "m1" {
			t.Errorf("rank %d on %q, want m0/m1", r, node)
		}
	}
}

func TestCheckpointAfterFinalizeFailsCleanly(t *testing.T) {
	c := fourNodeCluster(t, nil)
	factory, _ := newStencilFactory(3, 0)
	job, err := c.Launch(JobSpec{Name: "stencil", NP: 2, AppFactory: factory})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	_, err = c.CheckpointJob(job.JobID(), snapc.Options{})
	if !errors.Is(err, snapc.ErrNotCheckpointable) {
		t.Errorf("err = %v, want ErrNotCheckpointable", err)
	}
}

func TestSynchronousCheckpointThroughRuntime(t *testing.T) {
	c := fourNodeCluster(t, nil)
	type st struct{ Iter int }
	states := make([]*st, 3)
	factory := func(rank int) ompi.App {
		s := &st{}
		states[rank] = s
		return ompi.FuncApp{
			SetupFn: func(p *ompi.Proc) error { return p.RegisterState("s", s) },
			StepFn: func(p *ompi.Proc) (bool, error) {
				s.Iter++
				if s.Iter == 2 {
					if err := p.Checkpoint(); err != nil {
						return false, err
					}
				}
				return s.Iter >= 4, nil
			},
		}
	}
	job, err := c.Launch(JobSpec{Name: "sync", NP: 3, AppFactory: factory})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	// The synchronous request produced a global snapshot.
	ref := snapshot.GlobalRef{FS: c.Stable(), Dir: snapshot.GlobalDirName(int(job.JobID()))}
	meta, err := snapshot.ReadGlobal(ref, 0)
	if err != nil {
		t.Fatalf("ReadGlobal: %v", err)
	}
	if meta.NumProcs != 3 {
		t.Errorf("meta = %+v", meta)
	}
}

func TestRestartFromOSBackedStableStorage(t *testing.T) {
	// Global snapshots on a real disk directory survive the "death" of
	// the first cluster entirely — the tool path (ompi-restart).
	stable, err := vfs.NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c1, err := New(Config{
		Nodes:  []plm.NodeSpec{{Name: "n0", Slots: 4}},
		Stable: stable,
		Ins:    trace.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	factory, _ := newStencilFactory(0, 0)
	job, err := c1.Launch(JobSpec{Name: "stencil", NP: 2, AppFactory: factory})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c1.CheckpointJob(job.JobID(), snapc.Options{Terminate: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	// A brand-new "simulator process": only the stable path survives.
	stable2, err := vfs.NewOS(stable.Root())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := New(Config{
		Nodes:  []plm.NodeSpec{{Name: "x0", Slots: 4}},
		Stable: stable2,
		Ins:    trace.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ref := snapshot.GlobalRef{FS: stable2, Dir: res.Ref.Dir}
	latest, err := snapshot.LatestInterval(ref)
	if err != nil {
		t.Fatal(err)
	}
	factory2, apps2 := newStencilFactory(0, 3)
	job2, err := c2.Restart(ref, latest, factory2)
	if err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if err := job2.Wait(); err != nil {
		t.Fatal(err)
	}
	if (*apps2)[0].state.Iter != (*apps2)[0].startIter+3 {
		t.Error("restart from OS-backed storage did not resume")
	}
}

func TestJobBookkeeping(t *testing.T) {
	c := fourNodeCluster(t, nil)
	if _, err := c.Job(99); err == nil {
		t.Error("Job(99) succeeded")
	}
	factory, _ := newStencilFactory(2, 0)
	job, err := c.Launch(JobSpec{Name: "a", NP: 2, AppFactory: factory})
	if err != nil {
		t.Fatal(err)
	}
	ids := c.JobIDs()
	if len(ids) != 1 || ids[0] != job.JobID() {
		t.Errorf("JobIDs = %v", ids)
	}
	got, err := c.Job(job.JobID())
	if err != nil || got != job {
		t.Errorf("Job lookup = %v, %v", got, err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted empty cluster")
	}
	if _, err := New(Config{Nodes: []plm.NodeSpec{{Name: "a", Slots: 1}, {Name: "a", Slots: 1}}}); err == nil {
		t.Error("New accepted duplicate node names")
	}
	if _, err := New(Config{Nodes: []plm.NodeSpec{{Name: "#stable", Slots: 1}}}); err == nil {
		t.Error("New accepted reserved node name")
	}
}

func TestTraceEventsCoverFigureOne(t *testing.T) {
	log := &trace.Log{}
	c, err := New(Config{
		Nodes: []plm.NodeSpec{{Name: "n0", Slots: 2}, {Name: "n1", Slots: 2}},
		Ins:   trace.WithLogOnly(log),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	factory, _ := newStencilFactory(0, 0)
	job, err := c.Launch(JobSpec{Name: "s", NP: 4, AppFactory: factory})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CheckpointJob(job.JobID(), snapc.Options{Terminate: true}); err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	// The Figure-1 flow leaves its footprint in the trace.
	for _, kind := range []string{"ckpt.request", "ckpt.start", "ckpt.node-done", "ckpt.gathered", "ckpt.done", "filem.copy", "proc.ckpt"} {
		if log.Count(kind) == 0 {
			t.Errorf("no %q events in trace (summary: %s)", kind, log.Summary())
		}
	}
	_ = time.Now
	_ = fmt.Sprint
}
