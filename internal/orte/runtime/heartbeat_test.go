package runtime

import (
	"testing"
	"time"

	"repro/internal/faultsim"
	"repro/internal/mca"
	"repro/internal/orte/plm"
	"repro/internal/trace"
)

// TestHeartbeatToleratesTransientSendFailures is the regression test for
// the orted self-kill bug: a transient RML send error in heartbeatLoop
// used to terminate the beacon immediately, so the HNP's detector
// declared a perfectly healthy node dead. With the miss budget in place,
// a flaky endpoint that fails a bounded burst of sends must leave every
// node alive and the job unharmed.
func TestHeartbeatToleratesTransientSendFailures(t *testing.T) {
	// Fail 6 heartbeat sends after the first 4 succeed. The budget is 10
	// consecutive misses per node, so even if one unlucky orted absorbs
	// the whole burst it stays under its budget.
	inj := faultsim.New(7, faultsim.Rule{Point: "rml.send", After: 4, Times: 6})
	params := mca.NewParams()
	params.Set("orted_heartbeat_interval", "4ms")
	params.Set("orted_heartbeat_miss", "10")
	c, err := New(Config{
		Nodes: []plm.NodeSpec{
			{Name: "n0", Slots: 2}, {Name: "n1", Slots: 2},
			{Name: "n2", Slots: 2}, {Name: "n3", Slots: 2},
		},
		Params: params,
		Ins:    trace.New(),
		Faults: inj,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()

	// Let the beacons run until the whole fault burst has been absorbed.
	deadline := time.Now().Add(5 * time.Second)
	for inj.Fired("rml.send") < 6 {
		if time.Now().After(deadline) {
			t.Fatalf("fault rule never exhausted: fired %d/6", inj.Fired("rml.send"))
		}
		time.Sleep(time.Millisecond)
	}
	// Give the orteds time to resume clean beacons past the detector's
	// cutoff window, then verify nobody was declared dead.
	time.Sleep(60 * time.Millisecond)
	for _, n := range c.Nodes() {
		if !c.Alive(n) {
			t.Fatalf("node %q declared dead despite transient-only send failures", n)
		}
	}
	// The miss/backoff path must actually have been exercised, or the
	// test proves nothing.
	misses := 0
	for _, ev := range c.Log().Events() {
		if ev.Kind == "heartbeat.miss" {
			misses++
		}
	}
	if misses == 0 {
		t.Fatalf("fault rule never fired: no heartbeat.miss events recorded")
	}

	// The cluster must still be fully serviceable: a job launched after
	// the burst runs to completion on all four nodes.
	factory, _ := newStencilFactory(16, 0)
	j, err := c.Launch(JobSpec{Name: "hb-flaky", NP: 4, AppFactory: factory})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if err := j.Wait(); err != nil {
		t.Fatalf("job failed after transient heartbeat faults: %v", err)
	}
}

// TestBatchedHeartbeatPump forces batch mode on a small cluster and
// checks the coalesced beacon path end to end: the detector sees every
// node alive, an injected node kill still fires through the pump and
// is declared, and a job launched in batch mode completes.
func TestBatchedHeartbeatPump(t *testing.T) {
	inj := faultsim.New(3, faultsim.Rule{Point: "node.kill:n2", After: 3, Times: 1})
	params := mca.NewParams()
	params.Set("orted_heartbeat_interval", "4ms")
	params.Set("orted_heartbeat_miss", "10")
	params.Set("orted_heartbeat_batch", "true")
	c, err := New(Config{
		Nodes: []plm.NodeSpec{
			{Name: "n0", Slots: 2}, {Name: "n1", Slots: 2},
			{Name: "n2", Slots: 2}, {Name: "n3", Slots: 2},
		},
		Params: params,
		Ins:    trace.New(),
		Faults: inj,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	if !c.hbBatch {
		t.Fatalf("orted_heartbeat_batch=true did not enable the pump")
	}

	// The injected kill fires on the pump's third pass over n2.
	waitForEvent(t, c.Log(), "node.kill", time.Second)
	deadline := time.Now().Add(time.Second)
	for c.Alive("n2") {
		if time.Now().After(deadline) {
			t.Fatalf("pump-injected kill never took n2 down")
		}
		time.Sleep(time.Millisecond)
	}

	// Survivors keep beating through the shared message: nobody else may
	// be declared dead, and the health view must show fresh beats.
	time.Sleep(60 * time.Millisecond)
	for _, n := range []string{"n0", "n1", "n3"} {
		if !c.Alive(n) {
			t.Fatalf("node %q declared dead under batched heartbeats", n)
		}
	}
	h := c.Health()
	for _, nh := range h.Nodes {
		if nh.Node != "n2" && (nh.SinceBeat < 0 || nh.SinceBeat > 500*time.Millisecond) {
			t.Fatalf("node %q has stale batched beat: %v", nh.Node, nh.SinceBeat)
		}
	}

	// The shrunken cluster is still serviceable in batch mode.
	factory, _ := newStencilFactory(16, 0)
	j, err := c.Launch(JobSpec{Name: "hb-batch", NP: 3, AppFactory: factory})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if err := j.Wait(); err != nil {
		t.Fatalf("job failed under batched heartbeats: %v", err)
	}
}
