// Multilevel checkpoint verbs on the cluster (DESIGN.md §5g): the
// runtime face of the drain engine's L1/L2/L3 split, plus the
// per-job cadence-tuner registry the control plane reads.
//
// CheckpointJobLevel shares the capture half with CheckpointJobAsync
// (captureJob in job.go) and diverges only at the hand-off: a stable
// (L3) request goes to the drain queue as ever, a sub-stable one is
// sealed and held by the drainer. Promotion is lineage-scoped, so the
// wrappers here only translate a job ID into its global-dir lineage.
package runtime

import (
	"fmt"
	"path"

	"repro/internal/core/snapshot"
	"repro/internal/ompi"
	"repro/internal/orte/cadence"
	"repro/internal/orte/names"
	"repro/internal/orte/snapc"
)

// CheckpointJobLevel captures an interval and settles it at the given
// checkpoint level. LevelLocal (L1) seals node-local only; LevelReplica
// (L2) additionally pushes stage replicas to peer nodes; LevelStable
// (L3, or any level outside the sub-stable range) is the ordinary
// synchronous checkpoint — drained and committed to stable storage
// before returning. Returns the interval number captured.
func (c *Cluster) CheckpointJobLevel(id names.JobID, level int, opts snapc.Options) (int, error) {
	if level < snapshot.LevelLocal || level >= snapshot.LevelStable {
		p, err := c.CheckpointJobAsync(id, opts)
		if err != nil {
			return 0, err
		}
		_, err = p.Wait()
		return p.Interval, err
	}
	cpt, err := c.captureJob(id, opts)
	if err != nil {
		return 0, err
	}
	if err := c.Drainer().Seal(cpt, level); err != nil {
		return cpt.Interval, err
	}
	return cpt.Interval, nil
}

// PromoteJobReplicas lifts the job's newest L1 hold to L2 (stage
// replicas on peer nodes). Returns the promoted interval, or false
// when the job holds nothing promotable.
func (c *Cluster) PromoteJobReplicas(id names.JobID) (int, bool, error) {
	if err := c.headlessErr(); err != nil {
		return 0, false, err
	}
	iv, ok := c.Drainer().PromoteReplicas(snapshot.GlobalDirName(int(id)))
	return iv, ok, nil
}

// PromoteJobStable hands the job's newest held interval to the drain
// queue for a stable (L3) commit. Returns (nil, false, nil) when the
// job holds nothing.
func (c *Cluster) PromoteJobStable(id names.JobID) (*snapc.Pending, bool, error) {
	if err := c.headlessErr(); err != nil {
		return nil, false, err
	}
	return c.Drainer().PromoteStable(snapshot.GlobalDirName(int(id)))
}

// HeldIntervals reports the job's held (sub-stable) intervals and
// their levels.
func (c *Cluster) HeldIntervals(id names.JobID) map[int]int {
	return c.Drainer().Held(snapshot.GlobalDirName(int(id)))
}

// SetTunerState publishes a job's cadence-tuner snapshot so the
// control plane (ompi-ps --tuner) can read it. The supervision loop in
// core owns the tuner; the cluster only mirrors its latest plan.
func (c *Cluster) SetTunerState(id names.JobID, st cadence.State) {
	c.tunerMu.Lock()
	defer c.tunerMu.Unlock()
	if c.tuners == nil {
		c.tuners = make(map[names.JobID]cadence.State)
	}
	c.tuners[id] = st
}

// TunerState reports the last published cadence-tuner snapshot for a
// job, if its supervisor runs one.
func (c *Cluster) TunerState(id names.JobID) (cadence.State, bool) {
	c.tunerMu.Lock()
	defer c.tunerMu.Unlock()
	st, ok := c.tuners[id]
	return st, ok
}

// ClearTunerState drops a job's published tuner snapshot (supervision
// ended).
func (c *Cluster) ClearTunerState(id names.JobID) {
	c.tunerMu.Lock()
	defer c.tunerMu.Unlock()
	delete(c.tuners, id)
}

// RestorableHold reports the newest held interval of the job's lineage
// that a hold-direct restart could restore: every captured share
// survives on its origin node's sealed stage or a peer's stage
// replica. Read-only — asking costs nothing.
func (c *Cluster) RestorableHold(id names.JobID) (snapshot.JournalEntry, bool, error) {
	e, _, ok, err := snapc.NewestRestorableHold(c.snapcEnv, snapshot.GlobalDirName(int(id)), c.Alive)
	return e, ok, err
}

// RestartFromHold relaunches a failed job straight from its newest
// restorable held interval: each rank restores from the sealed local
// stage on its original node, or — when that node died — from the peer
// node holding its stage replica, and is placed where that surviving
// copy lives. Nothing crosses stable storage: this is the L1/L2
// restart path, and it is what makes sub-stable checkpoint levels
// durable enough to be worth holding. The drain queue must be idle
// (flush first) so an in-flight commit cannot race the stage reads.
func (c *Cluster) RestartFromHold(j *Job, appFactory func(rank int) ompi.App) (*Job, int, error) {
	if err := c.headlessErr(); err != nil {
		return nil, 0, err
	}
	id := j.JobID()
	gd := snapshot.GlobalDirName(int(id))
	e, plan, ok, err := snapc.NewestRestorableHold(c.snapcEnv, gd, c.Alive)
	if err != nil {
		return nil, 0, err
	}
	if !ok {
		return nil, 0, fmt.Errorf("runtime: job %d holds no restorable interval", id)
	}

	j.mu.Lock()
	origins := make(map[int]string, len(j.placement))
	for r, n := range j.placement {
		origins[r] = n
	}
	spec := j.spec
	j.mu.Unlock()
	spec.AppFactory = appFactory

	placement := make(map[int]string, spec.NP)
	restores := make([]*ompi.RestoreSpec, spec.NP)
	sources := make(map[int]string, spec.NP)
	crsNames := make([]string, spec.NP)
	for r := 0; r < spec.NP; r++ {
		origin := origins[r]
		src, ok := plan[origin]
		if !ok {
			return nil, 0, fmt.Errorf("runtime: hold restart: rank %d origin %q has no surviving stage", r, origin)
		}
		base, source := e.LocalBase, "restored:local-stage"
		if src != origin {
			base, source = snapc.StageReplicaBase(id, e.Interval, origin), "restored:stage-replica"
		}
		fsys, err := c.nodeFS(src)
		if err != nil {
			return nil, 0, err
		}
		dir := path.Join(base, snapshot.LocalDirName(r))
		lmeta, err := snapshot.ReadLocal(snapshot.LocalRef{FS: fsys, Dir: dir})
		if err != nil {
			return nil, 0, fmt.Errorf("runtime: hold restart rank %d: %w", r, err)
		}
		if lmeta.Interval != e.Interval || lmeta.JobID != int(id) || lmeta.Vpid != r {
			return nil, 0, fmt.Errorf("runtime: hold restart rank %d: stage %q holds job %d rank %d interval %d",
				r, dir, lmeta.JobID, lmeta.Vpid, lmeta.Interval)
		}
		placement[r] = src // restart where the surviving copy lives
		restores[r] = &ompi.RestoreSpec{FS: fsys, Dir: dir, Files: lmeta.Files}
		crsNames[r] = lmeta.Component
		sources[r] = source
	}
	spec.CRSByRank = func(rank int) string { return crsNames[rank] }

	c.ins.Counter("ompi_restart_from_hold_total").Inc()
	c.ins.Emit("hnp", "job.restart-held", "from %s held interval %d (%s) np=%d",
		gd, e.Interval, e.LevelLabel(), spec.NP)
	next, err := c.launch(spec, placement, restores)
	if err != nil {
		return nil, 0, err
	}
	next.mu.Lock()
	for r, src := range sources {
		next.rankMeta[r].Source = src
		next.rankMeta[r].Interval = e.Interval
	}
	next.mu.Unlock()
	// The new incarnation owns protection from here; abandon the old
	// lineage's in-memory holds (the on-disk stages the restores read
	// are untouched — only the accounting is dropped).
	c.Drainer().DropHeld(gd)
	return next, e.Interval, nil
}
