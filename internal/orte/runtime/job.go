package runtime

import (
	"errors"
	"fmt"
	"path"
	"sync"
	"time"

	"repro/internal/core/snapshot"
	"repro/internal/mca"
	"repro/internal/ompi"
	"repro/internal/ompi/btl"
	"repro/internal/ompi/crcp"
	"repro/internal/opal/crs"
	"repro/internal/orte/filem"
	"repro/internal/orte/ledger"
	"repro/internal/orte/names"
	"repro/internal/orte/plm"
	"repro/internal/orte/snapc"
	"repro/internal/vfs"
)

// JobSpec describes an application launch.
type JobSpec struct {
	// Name identifies the application (recorded in snapshot metadata).
	Name string
	// Args are the application's arguments (recorded in metadata).
	Args []string
	// NP is the number of ranks.
	NP int
	// AppFactory builds the rank-local application instance.
	AppFactory func(rank int) ompi.App
	// Params overlays job-specific MCA parameters on the cluster's.
	Params *mca.Params
	// CRSByRank optionally selects a CRS component per rank (returning
	// "" falls back to the job-wide selection). Local snapshots record
	// which checkpointer produced them, so one global snapshot may mix
	// components — the paper's heterogeneous-support scenario (§4).
	CRSByRank func(rank int) string
}

// ckptState tracks one rank's checkpointability: unknown until the rank
// completes MPI_INIT, yes between init and finalize, no after finalize
// entry or when the application opted out.
type ckptState int8

const (
	ckptUnknown ckptState = iota
	ckptYes
	ckptNo
)

// Job is one launched parallel application.
type Job struct {
	cluster *Cluster
	id      names.JobID
	spec    JobSpec
	params  *mca.Params

	// Component selections are kept so the recovery coordinator can
	// respawn ranks with the same stack the job launched with.
	btlComp  btl.Component
	crcpComp crcp.Component
	crsFor   func(rank int) (crs.Component, error)

	placement map[int]string // rank -> node; guarded by mu after launch
	nodes     []string       // distinct nodes, stable order; guarded by mu
	procs     []*ompi.Proc   // rank slots; entries replaced on respawn (mu)
	apps      []ompi.App     // rank slots; entries replaced on respawn (mu)
	fabric    btl.JobFabric  // job transport; Close aborts the job (mu)

	// capMu serializes this job's capture phases: one interval of a job
	// captures at a time, but different jobs capture concurrently —
	// their coordinators share the HNP mailbox via job-matched receives.
	capMu sync.Mutex

	mu             sync.Mutex
	checkpointable []ckptState
	nextInterval   int
	epochs         []int      // per-rank incarnation counter (mu)
	rankMeta       []RankInfo // per-rank observability (mu)
	handler        RecoveryHandler
	recov          *RecoverySession // active recovery session, nil otherwise

	wg   sync.WaitGroup // one per live rank goroutine, respawns included
	errs []error
	done chan struct{}
}

// effectiveParams overlays job params on cluster params.
func effectiveParams(cluster *mca.Params, job *mca.Params) *mca.Params {
	out := cluster.Clone()
	for _, k := range job.Keys() {
		v, _ := job.Lookup(k)
		out.Set(k, v)
	}
	return out
}

// Launch starts a job on the cluster: the PLM places ranks on nodes,
// processes attach to a fresh fabric, and each rank's application runs
// on its own goroutine.
func (c *Cluster) Launch(spec JobSpec) (*Job, error) {
	return c.launch(spec, nil, nil)
}

// launch implements Launch and Restart. placementOverride fixes the
// rank->node map (restart may re-place); restores supplies per-rank
// restore specs.
func (c *Cluster) launch(spec JobSpec, placementOverride map[int]string, restores []*ompi.RestoreSpec) (*Job, error) {
	if err := c.headlessErr(); err != nil {
		return nil, err
	}
	if spec.NP <= 0 {
		return nil, fmt.Errorf("runtime: job needs NP > 0, got %d", spec.NP)
	}
	if spec.AppFactory == nil {
		return nil, fmt.Errorf("runtime: job needs an AppFactory")
	}
	params := effectiveParams(c.params, spec.Params)

	placement := placementOverride
	if placement == nil {
		var err error
		placement, err = c.plmComp.MapProcs(spec.NP, c.NodeSpecs())
		if err != nil {
			return nil, fmt.Errorf("runtime: place job: %w", err)
		}
	}

	defaultCRS, err := c.crsFw.Select(params)
	if err != nil {
		return nil, err
	}
	crsFor := func(rank int) (crs.Component, error) {
		if spec.CRSByRank != nil {
			if name := spec.CRSByRank(rank); name != "" {
				return c.crsFw.Lookup(name)
			}
		}
		return defaultCRS, nil
	}
	crcpComp, err := c.crcpFw.Select(params)
	if err != nil {
		return nil, err
	}
	btlComp, err := c.btlFw.Select(params)
	if err != nil {
		return nil, err
	}

	j := &Job{
		cluster:        c,
		id:             c.ns.AllocateJob(),
		spec:           spec,
		params:         params,
		btlComp:        btlComp,
		crcpComp:       crcpComp,
		crsFor:         crsFor,
		placement:      placement,
		checkpointable: make([]ckptState, spec.NP),
		epochs:         make([]int, spec.NP),
		rankMeta:       make([]RankInfo, spec.NP),
		done:           make(chan struct{}),
		errs:           make([]error, spec.NP),
	}
	for r := 0; r < spec.NP; r++ {
		j.rankMeta[r] = RankInfo{Rank: r, Node: placement[r], State: RankRunning, Interval: -1, Source: "fresh"}
	}
	seen := make(map[string]bool)
	for r := 0; r < spec.NP; r++ {
		node := placement[r]
		if _, ok := c.nodes[node]; !ok {
			return nil, fmt.Errorf("runtime: rank %d placed on unknown node %q", r, node)
		}
		if !c.Alive(node) {
			return nil, fmt.Errorf("runtime: rank %d placed on dead node %q", r, node)
		}
		if !seen[node] {
			seen[node] = true
			j.nodes = append(j.nodes, node)
		}
	}

	fabric, err := btlComp.NewFabric(spec.NP)
	if err != nil {
		return nil, fmt.Errorf("runtime: job fabric: %w", err)
	}
	j.fabric = fabric
	j.procs = make([]*ompi.Proc, spec.NP)
	j.apps = make([]ompi.App, spec.NP)
	for r := 0; r < spec.NP; r++ {
		proc, err := j.newRankProc(r, placement[r], fabric, nil)
		if err != nil {
			return nil, err
		}
		j.procs[r] = proc
		j.apps[r] = spec.AppFactory(r)
	}

	// Job ids restart with each HNP, so a fresh cluster sharing stable
	// storage with an earlier run can collide with its global snapshot
	// directory. Committed intervals are never overwritten: continue the
	// interval sequence past whatever is already there.
	ref := snapshot.GlobalRef{FS: c.stable, Dir: snapshot.GlobalDirName(int(j.id))}
	if iv, err := snapshot.LatestInterval(ref); err == nil {
		j.nextInterval = iv + 1
	}

	c.mu.Lock()
	c.jobs[j.id] = j
	c.mu.Unlock()
	c.ins.Emit("hnp", "job.launch", "job %d np=%d app=%s", j.id, spec.NP, spec.Name)
	c.ledgerAppend(ledger.TypeJobLaunch, int(j.id),
		ledger.JobLaunch{Name: spec.Name, NP: spec.NP, Placement: placement})

	for r := 0; r < spec.NP; r++ {
		var rs *ompi.RestoreSpec
		if restores != nil {
			rs = restores[r]
		}
		j.wg.Add(1)
		go j.runRank(r, 0, j.procs[r], j.apps[r], rs)
	}
	go func() {
		j.wg.Wait()
		j.closeFabric() // release transport resources (TCP connections)
		close(j.done)
		c.ins.Emit("hnp", "job.done", "job %d", j.id)
		c.ledgerAppend(ledger.TypeJobDone, int(j.id), nil)
	}()
	return j, nil
}

// fenceStaleDirectives fences every checkpoint interval allocated so
// far on every rank: after an HNP crash, a directive from the dead
// coordinator parked in a survivor's mailbox would force ranks to a
// step frontier nobody coordinates (see CompleteRecovery for the same
// fence at session close).
func (j *Job) fenceStaleDirectives() {
	j.mu.Lock()
	defer j.mu.Unlock()
	fence := j.nextInterval - 1
	for r := 0; r < j.spec.NP; r++ {
		if p := j.procs[r]; p != nil {
			p.FenceDirectives(fence)
		}
	}
}

// newRankProc builds one rank's process object, wired to the job's
// lifecycle hooks. Used at launch and again when the recovery
// coordinator respawns a lost rank on a replacement node.
func (j *Job) newRankProc(r int, node string, fabric btl.JobFabric, gate func([]byte, error) error) (*ompi.Proc, error) {
	crsComp, err := j.crsFor(r)
	if err != nil {
		return nil, fmt.Errorf("runtime: rank %d CRS: %w", r, err)
	}
	proc, err := ompi.NewProc(ompi.Config{
		JobID: int(j.id), Rank: r, Size: j.spec.NP,
		Node: node, PID: 1000*int(j.id) + r,
		Fabric: fabric, Params: j.params,
		CRS: crsComp, CRCP: j.crcpComp, Ins: j.cluster.ins,
		SyncCheckpoint:       j.syncCheckpoint,
		NotifyCheckpointable: func(ok bool) { j.setCheckpointable(r, ok) },
		Recover:              func(cause error) (*ompi.RecoverOrder, error) { return j.awaitRecovery(r, cause) },
		RecoveryGate:         gate,
	})
	if err != nil {
		return nil, fmt.Errorf("runtime: create rank %d: %w", r, err)
	}
	return proc, nil
}

// syncCheckpoint serves a rank's synchronous checkpoint request. The
// requesting rank participates in the checkpoint it triggers, so the
// global request must run concurrently: blocking here would deadlock the
// coordinator against the caller's own participation.
func (j *Job) syncCheckpoint() error {
	go func() {
		if _, err := j.cluster.CheckpointJob(j.id, snapc.Options{}); err != nil {
			j.cluster.ins.Emit("hnp", "ckpt.sync-error", "job %d: %v", j.id, err)
		}
	}()
	return nil
}

// runRank drives one incarnation of a rank slot. The epoch guards
// bookkeeping: when the slot has been respawned (lost-node recovery or
// migration), the stale incarnation's exit is discarded.
func (j *Job) runRank(r, epoch int, proc *ompi.Proc, app ompi.App, rs *ompi.RestoreSpec) {
	defer j.wg.Done()
	err := proc.Run(app, rs)
	j.mu.Lock()
	if epoch != j.epochs[r] {
		j.mu.Unlock()
		return // superseded incarnation; the respawn owns this slot now
	}
	j.errs[r] = err
	if err != nil {
		j.rankMeta[r].State = RankFailed
	} else if j.rankMeta[r].State != RankMigrated {
		j.rankMeta[r].State = RankDone
	}
	fab := j.fabric
	abort := err != nil && j.recov == nil
	j.mu.Unlock()
	if abort {
		// A failed rank aborts the whole job, as mpirun kills a
		// parallel job when one process dies: closing the fabric fails
		// every peer blocked in communication. Suppressed while a
		// recovery session owns the job: survivors are parked, not dead.
		j.setCheckpointable(r, false)
		fab.Close()
	}
}

// closeFabric closes the job's current fabric under the lock (recovery
// swaps fabrics, so the field must not be read bare).
func (j *Job) closeFabric() {
	j.mu.Lock()
	fab := j.fabric
	j.mu.Unlock()
	fab.Close()
}

// Wait blocks until every rank finished and returns the combined error
// of all failed ranks (nil if the job completed cleanly).
func (j *Job) Wait() error {
	<-j.done
	var errs []error
	for r, err := range j.errs {
		if err != nil {
			errs = append(errs, fmt.Errorf("runtime: job %d rank %d: %w", j.id, r, err))
		}
	}
	return errors.Join(errs...)
}

// Done reports (without blocking) whether the job has finished.
func (j *Job) Done() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// App returns the rank-local application instance (examples inspect it).
// Recovery replaces slot entries, so reads go through the lock.
func (j *Job) App(rank int) ompi.App {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.apps[rank]
}

// hasRanksOn reports whether any rank of the job runs on node.
func (j *Job) hasRanksOn(node string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, n := range j.nodes {
		if n == node {
			return true
		}
	}
	return false
}

// Proc returns the rank's process object.
func (j *Job) Proc(rank int) *ompi.Proc {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.procs[rank]
}

func (j *Job) setCheckpointable(rank int, ok bool) {
	st := ckptNo
	if ok {
		st = ckptYes
	}
	j.mu.Lock()
	j.checkpointable[rank] = st
	j.mu.Unlock()
}

// awaitInitialized waits until no rank is still pre-MPI_INIT, so a
// checkpoint requested during job startup waits for initialization
// instead of failing spuriously.
func (j *Job) awaitInitialized(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ready := true
		j.mu.Lock()
		for _, st := range j.checkpointable {
			if st == ckptUnknown {
				ready = false
				break
			}
		}
		j.mu.Unlock()
		if ready {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("runtime: job %d did not finish initializing within %v", j.id, timeout)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// --- snapc.JobView -----------------------------------------------------------

// JobID implements snapc.JobView.
func (j *Job) JobID() names.JobID { return j.id }

// AppName implements snapc.JobView.
func (j *Job) AppName() string { return j.spec.Name }

// AppArgs implements snapc.JobView.
func (j *Job) AppArgs() []string { return j.spec.Args }

// NumProcs implements snapc.JobView.
func (j *Job) NumProcs() int { return j.spec.NP }

// NodeOf implements snapc.JobView.
func (j *Job) NodeOf(vpid int) string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.placement[vpid]
}

// Nodes implements snapc.JobView.
func (j *Job) Nodes() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]string, len(j.nodes))
	copy(out, j.nodes)
	return out
}

// Checkpointable implements snapc.JobView.
func (j *Job) Checkpointable(vpid int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.checkpointable[vpid] == ckptYes
}

// Deliver implements snapc.JobView.
func (j *Job) Deliver(vpid int, d *ompi.Directive) { j.Proc(vpid).Deliver(d) }

// Params implements snapc.JobView.
func (j *Job) Params() *mca.Params { return j.params }

var _ snapc.JobView = (*Job)(nil)

// --- Checkpoint and restart ---------------------------------------------------

// CheckpointJobAsync runs the synchronous capture phase of a global
// checkpoint — quiesce → capture → release, ending with the interval
// staged node-local — and hands the interval to the background drain
// queue. The returned ticket's Wait blocks until the drain (gather →
// commit → replicate) finishes. Captures are serialized per job — the
// drain of interval N overlaps the capture of interval N+1, and
// different jobs' captures overlap each other.
func (c *Cluster) CheckpointJobAsync(id names.JobID, opts snapc.Options) (*snapc.Pending, error) {
	cpt, err := c.captureJob(id, opts)
	if err != nil {
		return nil, err
	}
	return c.Drainer().Enqueue(cpt)
}

// captureJob is the synchronous half every checkpoint flavor shares:
// quiesce → capture → release under the capture gate, ending with the
// interval staged node-local. CheckpointJobAsync hands the result to
// the drain queue; CheckpointJobLevel seals it at a sub-stable level.
func (c *Cluster) captureJob(id names.JobID, opts snapc.Options) (*snapc.Captured, error) {
	if err := c.headlessErr(); err != nil {
		return nil, err
	}
	j, err := c.Job(id)
	if err != nil {
		return nil, err
	}
	j.capMu.Lock()
	defer j.capMu.Unlock()
	if err := j.awaitInitialized(10 * time.Second); err != nil {
		return nil, err
	}
	j.mu.Lock()
	interval := j.nextInterval
	j.nextInterval++
	j.mu.Unlock()
	globalDir := snapshot.GlobalDirName(int(id))
	// The capture gate (snapc_capture_gate) bounds how many jobs
	// quiesce-and-capture at once, in the drain scheduler's
	// weighted-fair order; unlimited by default.
	if err := c.Drainer().AcquireCapture(globalDir, j); err != nil {
		return nil, err
	}
	cpt, err := c.snapcComp.Capture(c.snapcEnv, j, c.hnpEndpoint(), c.daemons, globalDir, interval, opts)
	c.Drainer().ReleaseCapture(globalDir)
	if err != nil {
		// An injected HNP crash inside the quiesce window takes the
		// whole coordinator down: the directives already fanned out, the
		// orteds seal their stages autonomously, and Reattach's journal
		// rebuild resurrects the interval from them.
		if errors.Is(err, snapc.ErrHNPCrashed) {
			_ = c.CrashHNP(err)
		}
		return nil, err
	}
	j.noteCheckpoint(interval)
	return cpt, nil
}

// CheckpointJob runs a global checkpoint of the job through the SNAPC
// component and returns the result, whose Ref is the global snapshot
// reference the paper's tools print. The synchronous path is exactly
// the asynchronous one awaited immediately — one code path, one
// journal, one state machine.
func (c *Cluster) CheckpointJob(id names.JobID, opts snapc.Options) (snapc.Result, error) {
	p, err := c.CheckpointJobAsync(id, opts)
	if err != nil {
		return snapc.Result{}, err
	}
	return p.Wait()
}

// Restart relaunches a job from a global snapshot reference, possibly
// on a different cluster or node mapping. Everything but the application
// factory comes from the snapshot metadata — the user recalls nothing.
func (c *Cluster) Restart(ref snapshot.GlobalRef, interval int, appFactory func(rank int) ompi.App) (*Job, error) {
	if err := c.headlessErr(); err != nil {
		return nil, err
	}
	meta, err := snapshot.ReadGlobal(ref, interval)
	if err != nil {
		return nil, err
	}
	params := mca.FromMap(meta.MCAParams)
	// Re-place the ranks on this cluster's nodes (may differ from the
	// original mapping: the restart mechanism "maps onto the
	// heterogeneous environment as required by the global snapshot").
	plmComp, err := plm.NewFramework().Select(params)
	if err != nil {
		return nil, err
	}
	placement, err := plmComp.MapProcs(meta.NumProcs, c.NodeSpecs())
	if err != nil {
		return nil, fmt.Errorf("runtime: place restarted job: %w", err)
	}

	// FILEM broadcast: preload each local snapshot from stable storage
	// onto the node that will host the restarted rank — unless the rank
	// lands back on the node that captured it and that node still holds
	// the interval's sealed local stage, in which case the restart
	// restores straight from it (no stable-storage round-trip). The
	// local stage outlives the job when checkpoints keep local copies or
	// when drain recovery preserved it.
	restores := make([]*ompi.RestoreSpec, meta.NumProcs)
	sources := make(map[int]string, meta.NumProcs)
	localBase := snapc.LocalBaseDir(names.JobID(meta.JobID), interval)
	for _, pe := range meta.Procs {
		node := placement[pe.Vpid]
		if node == pe.Node {
			if nodeFS, err := c.nodeFS(node); err == nil &&
				vfs.Exists(nodeFS, path.Join(localBase, snapshot.LocalCommittedFile)) {
				localDir := path.Join(localBase, snapshot.LocalDirName(pe.Vpid))
				if lmeta, err := snapshot.ReadLocal(snapshot.LocalRef{FS: nodeFS, Dir: localDir}); err == nil &&
					lmeta.Interval == interval && lmeta.JobID == meta.JobID && lmeta.Vpid == pe.Vpid {
					restores[pe.Vpid] = &ompi.RestoreSpec{FS: nodeFS, Dir: localDir, Files: lmeta.Files}
					sources[pe.Vpid] = "restored:local-stage"
					c.ins.Counter("ompi_restart_local_fast_path_total").Inc()
					c.ins.Emit("hnp", "restart.local-fast-path",
						"rank %d restored from node %q local stage (interval %d)", pe.Vpid, node, interval)
					continue
				}
			}
		}
		lref := snapshot.LocalRefIn(ref, interval, pe)
		lmeta, err := snapshot.ReadLocal(lref)
		if err != nil {
			return nil, fmt.Errorf("runtime: restart rank %d: %w", pe.Vpid, err)
		}
		dstDir := fmt.Sprintf("tmp/restart/job%d/%d/%s", meta.JobID, interval, snapshot.LocalDirName(pe.Vpid))
		st, err := c.filemComp.Move(c.filemEnv, []filem.Request{{
			SrcNode: filem.StableNode, SrcPath: lref.Dir,
			DstNode: node, DstPath: dstDir,
		}})
		if err != nil {
			return nil, fmt.Errorf("runtime: preload rank %d on %q: %w", pe.Vpid, node, err)
		}
		c.ins.Counter("ompi_restart_restored_bytes_total").Add(st.Bytes)
		nodeFS, err := c.nodeFS(node)
		if err != nil {
			return nil, err
		}
		restores[pe.Vpid] = &ompi.RestoreSpec{FS: nodeFS, Dir: dstDir, Files: lmeta.Files}
		sources[pe.Vpid] = "restored:stable"
	}

	// Per-process CRS components may differ (heterogeneous snapshots):
	// each local snapshot's metadata records the checkpointer that
	// produced it, and the restarted rank must use the same one.
	crsNames := make([]string, meta.NumProcs)
	for _, pe := range meta.Procs {
		crsNames[pe.Vpid] = pe.Component
	}
	spec := JobSpec{
		Name:       meta.AppName,
		Args:       meta.AppArgs,
		NP:         meta.NumProcs,
		AppFactory: appFactory,
		Params:     params,
		CRSByRank:  func(rank int) string { return crsNames[rank] },
	}
	c.ins.Emit("hnp", "job.restart", "from %s interval %d np=%d", ref.Dir, interval, meta.NumProcs)
	j, err := c.launch(spec, placement, restores)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	for r, src := range sources {
		j.rankMeta[r].Source = src
		j.rankMeta[r].Interval = interval
	}
	j.mu.Unlock()
	return j, nil
}
