// Package runtime is the simulated cluster: virtual nodes with local
// filesystems, one orted (local coordinator) per node, and an HNP
// (mpirun) that launches jobs, serves checkpoint requests and owns the
// stable-storage global snapshots. It stands in for ORTE's daemons and
// TCP out-of-band plane (see DESIGN.md's substitution table) while
// preserving the entity topology and message flow of the paper's
// Figure 1.
package runtime

import (
	"fmt"
	"sync"

	"repro/internal/mca"
	"repro/internal/netsim"
	"repro/internal/ompi/btl"
	"repro/internal/ompi/crcp"
	"repro/internal/opal/crs"
	"repro/internal/orte/filem"
	"repro/internal/orte/names"
	"repro/internal/orte/plm"
	"repro/internal/orte/rml"
	"repro/internal/orte/snapc"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// Node is one virtual machine in the cluster.
type Node struct {
	Name  string
	Slots int
	FS    *vfs.Mem // node-local disk
}

// Config assembles a Cluster.
type Config struct {
	// Nodes describes the machines; at least one is required.
	Nodes []plm.NodeSpec
	// Stable is the stable storage filesystem. Defaults to an
	// in-memory store (tests); tools pass an OS-backed one so global
	// snapshots survive the simulator process.
	Stable vfs.FS
	// Params are cluster-default MCA parameters.
	Params *mca.Params
	// Log receives runtime trace events. Optional.
	Log *trace.Log
	// Uplink and Ingress override the modeled link characteristics.
	Uplink  *netsim.Link
	Ingress *netsim.Link
}

// Cluster is the running simulated machine room plus its runtime.
type Cluster struct {
	cfg    Config
	log    *trace.Log
	params *mca.Params

	nodes  map[string]*Node
	order  []string
	topo   *netsim.Topology
	clock  *netsim.Clock
	stable vfs.FS

	router *rml.Router
	hnpEP  *rml.Endpoint
	ns     *names.Service

	// Selected components (runtime-wide; jobs may override via params).
	snapcComp snapc.Component
	filemComp filem.Component
	plmComp   plm.Component
	crsFw     *mca.Framework[crs.Component]
	crcpFw    *mca.Framework[crcp.Component]
	btlFw     *mca.Framework[btl.Component]

	filemEnv *filem.Env
	snapcEnv *snapc.Env
	daemons  map[string]names.Name

	mu      sync.Mutex
	jobs    map[names.JobID]*Job
	ckptMu  sync.Mutex // serializes global checkpoints (centralized coordinator)
	stopped bool
	wg      sync.WaitGroup
}

// New builds and starts a cluster: nodes, daemons and frameworks.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("runtime: cluster needs at least one node")
	}
	if cfg.Params == nil {
		cfg.Params = mca.NewParams()
	}
	if cfg.Stable == nil {
		cfg.Stable = vfs.NewMem()
	}
	c := &Cluster{
		cfg:    cfg,
		log:    cfg.Log,
		params: cfg.Params,
		nodes:  make(map[string]*Node),
		stable: cfg.Stable,
		router: rml.NewRouter(),
		ns:     names.NewService(),
		clock:  &netsim.Clock{},
		jobs:   make(map[names.JobID]*Job),
	}

	// Interconnect model.
	ingress := netsim.DefaultIngress
	if cfg.Ingress != nil {
		ingress = *cfg.Ingress
	}
	uplink := netsim.DefaultUplink
	if cfg.Uplink != nil {
		uplink = *cfg.Uplink
	}
	c.topo = netsim.NewTopology(ingress)
	for _, spec := range cfg.Nodes {
		if spec.Name == filem.StableNode {
			return nil, fmt.Errorf("runtime: node name %q is reserved", spec.Name)
		}
		if _, dup := c.nodes[spec.Name]; dup {
			return nil, fmt.Errorf("runtime: duplicate node %q", spec.Name)
		}
		c.nodes[spec.Name] = &Node{Name: spec.Name, Slots: spec.Slots, FS: vfs.NewMem()}
		c.order = append(c.order, spec.Name)
		c.topo.AddNode(spec.Name, uplink)
	}

	// Framework selection (the MCA machinery the whole design rides on).
	var err error
	if c.snapcComp, err = snapc.NewFramework().Select(cfg.Params); err != nil {
		return nil, err
	}
	if c.filemComp, err = filem.NewFramework().Select(cfg.Params); err != nil {
		return nil, err
	}
	if c.plmComp, err = plm.NewFramework().Select(cfg.Params); err != nil {
		return nil, err
	}
	c.crsFw = crs.NewFramework()
	c.crcpFw = crcp.NewFramework()
	c.btlFw = btl.NewFramework()

	// FILEM/SNAPC environments.
	c.filemEnv = &filem.Env{
		Resolve: c.resolveFS,
		Topo:    c.topo,
		Clock:   c.clock,
		Log:     c.log,
	}
	c.snapcEnv = &snapc.Env{
		Filem:    c.filemComp,
		FilemEnv: c.filemEnv,
		Stable:   c.stable,
		NodeFS:   c.nodeFS,
		Log:      c.log,
	}

	// Runtime entities: HNP plus one orted (local coordinator) per node.
	if c.hnpEP, err = c.router.Register(names.HNP); err != nil {
		return nil, err
	}
	c.daemons = make(map[string]names.Name, len(c.order))
	for i, nodeName := range c.order {
		dn := names.Daemon(i)
		ep, err := c.router.Register(dn)
		if err != nil {
			return nil, err
		}
		c.daemons[nodeName] = dn
		c.wg.Add(1)
		go func(nodeName string, ep *rml.Endpoint) {
			defer c.wg.Done()
			if err := c.snapcComp.ServeLocal(c.snapcEnv, nodeName, ep, c.resolveJob); err != nil {
				c.log.Emit("orted["+nodeName+"]", "orted.error", "%v", err)
			}
		}(nodeName, ep)
	}
	c.log.Emit("hnp", "cluster.up", "%d nodes", len(c.order))
	return c, nil
}

// Close shuts the cluster down: daemons stop, endpoints close.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	c.mu.Unlock()
	c.router.Close()
	c.wg.Wait()
}

// Nodes returns the node names in declaration order.
func (c *Cluster) Nodes() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// NodeSpecs returns the launch specs of the cluster's nodes.
func (c *Cluster) NodeSpecs() []plm.NodeSpec {
	out := make([]plm.NodeSpec, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, plm.NodeSpec{Name: n, Slots: c.nodes[n].Slots})
	}
	return out
}

// Stable returns the stable-storage filesystem.
func (c *Cluster) Stable() vfs.FS { return c.stable }

// Clock returns the simulated-network clock.
func (c *Cluster) Clock() *netsim.Clock { return c.clock }

// Log returns the cluster trace log (may be nil).
func (c *Cluster) Log() *trace.Log { return c.log }

func (c *Cluster) resolveFS(node string) (vfs.FS, error) {
	if node == filem.StableNode {
		return c.stable, nil
	}
	return c.nodeFS(node)
}

func (c *Cluster) nodeFS(node string) (vfs.FS, error) {
	n, ok := c.nodes[node]
	if !ok {
		return nil, fmt.Errorf("runtime: unknown node %q", node)
	}
	return n.FS, nil
}

func (c *Cluster) resolveJob(id names.JobID) (snapc.JobView, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return nil, fmt.Errorf("runtime: unknown job %d", id)
	}
	return j, nil
}

// Job returns a running (or finished, not yet forgotten) job by id.
func (c *Cluster) Job(id names.JobID) (*Job, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return nil, fmt.Errorf("runtime: unknown job %d", id)
	}
	return j, nil
}

// JobIDs lists the ids of all known jobs.
func (c *Cluster) JobIDs() []names.JobID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]names.JobID, 0, len(c.jobs))
	for id := range c.jobs {
		out = append(out, id)
	}
	return out
}
