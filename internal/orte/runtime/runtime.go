// Package runtime is the simulated cluster: virtual nodes with local
// filesystems, one orted (local coordinator) per node, and an HNP
// (mpirun) that launches jobs, serves checkpoint requests and owns the
// stable-storage global snapshots. It stands in for ORTE's daemons and
// TCP out-of-band plane (see DESIGN.md's substitution table) while
// preserving the entity topology and message flow of the paper's
// Figure 1.
package runtime

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core/snapshot"
	"repro/internal/faultsim"
	"repro/internal/mca"
	"repro/internal/netsim"
	"repro/internal/ompi/btl"
	"repro/internal/ompi/crcp"
	"repro/internal/opal/crs"
	"repro/internal/orte/cadence"
	"repro/internal/orte/filem"
	"repro/internal/orte/ledger"
	"repro/internal/orte/names"
	"repro/internal/orte/plm"
	"repro/internal/orte/rml"
	"repro/internal/orte/sched"
	"repro/internal/orte/snapc"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// Node is one virtual machine in the cluster.
type Node struct {
	Name  string
	Slots int
	FS    *vfs.Mem // node-local disk (raw store)

	fs     vfs.FS        // runtime view of FS, fault-wrapped when a plan is installed
	alive  bool          // guarded by Cluster.mu
	stopHB chan struct{} // closed when the node dies or the cluster stops
	hbOnce sync.Once
}

// stopHeartbeat silences the node's liveness beacon (idempotent).
func (n *Node) stopHeartbeat() { n.hbOnce.Do(func() { close(n.stopHB) }) }

// Config assembles a Cluster.
type Config struct {
	// Nodes describes the machines; at least one is required.
	Nodes []plm.NodeSpec
	// Stable is the stable storage filesystem. Defaults to an
	// in-memory store (tests); tools pass an OS-backed one so global
	// snapshots survive the simulator process.
	Stable vfs.FS
	// Params are cluster-default MCA parameters.
	Params *mca.Params
	// Ins is the cluster's instrumentation: trace events, metrics and
	// spans from every layer flow into it. Optional.
	Ins *trace.Instrumentation
	// Uplink and Ingress override the modeled link characteristics.
	Uplink  *netsim.Link
	Ingress *netsim.Link
	// Faults optionally installs a deterministic fault-injection plan.
	// When nil, the "fault_plan" MCA parameter is consulted (see
	// faultsim.Parse for the grammar).
	Faults *faultsim.Injector
}

// Cluster is the running simulated machine room plus its runtime.
type Cluster struct {
	cfg    Config
	ins    *trace.Instrumentation
	params *mca.Params

	nodes  map[string]*Node
	order  []string
	topo   *netsim.Topology
	clock  *netsim.Clock
	stable vfs.FS
	faults *faultsim.Injector

	router *rml.Router
	hnpEP  *rml.Endpoint
	ns     *names.Service

	// Selected components (runtime-wide; jobs may override via params).
	snapcComp snapc.Component
	filemComp filem.Component
	plmComp   plm.Component
	crsFw     *mca.Framework[crs.Component]
	crcpFw    *mca.Framework[crcp.Component]
	btlFw     *mca.Framework[btl.Component]

	filemEnv *filem.Env
	snapcEnv *snapc.Env
	daemons  map[string]names.Name

	// Batched heartbeat mode (orted_heartbeat_batch, auto-enabled at
	// >= batchHeartbeatNodes nodes): one pump goroutine beats for every
	// live orted instead of one goroutine + ticker per node.
	hbBatch   bool
	daemonEPs map[string]*rml.Endpoint
	pumpStop  chan struct{}
	pumpOnce  sync.Once

	// led is the HNP's durable job ledger: every control-plane mutation
	// (launches, interval lifecycle, placements, deaths, recovery
	// sessions) is written through so a crashed coordinator can be
	// rebuilt from stable storage. Nil when hnp_ledger=false.
	led *ledger.Ledger

	// Failure-detector cadence, kept so Reattach can restart the
	// monitor with the same parameters the cluster booted with.
	hbInterval time.Duration
	hbMiss     int

	// lastBeat records when the HNP last heard each orted; the health
	// op and the reattach handshake read it.
	hbMu     sync.Mutex
	lastBeat map[string]time.Time

	// replCount tracks how many interval replicas each node holds, fed
	// from the SNAPC interval notes. With snapc_replica_spread=true the
	// replica candidate list is ordered least-loaded-first from these
	// counts, spreading concurrent jobs' replicas across the cluster.
	replMu    sync.Mutex
	replCount map[string]int

	// tuners mirrors each supervised job's latest cadence-tuner plan
	// (published by core's Supervise) for the control plane to read.
	tunerMu sync.Mutex
	tuners  map[names.JobID]cadence.State

	mu      sync.Mutex
	jobs    map[names.JobID]*Job
	drainer *snapc.Drainer // replaced wholesale by Reattach (guarded by mu)
	// headless is the HNP-crash state: the coordinator endpoint is gone,
	// the failure detector is stopped, and node deaths are deferred to
	// pendingDeaths until Reattach rebuilds the control plane.
	headless      bool
	headlessCause error
	crashedAt     time.Time
	pendingDeaths []string
	// ckptMu orders checkpoint-pipeline work against state surgery:
	// drains and commits hold the read side (different jobs' lineages
	// may drain concurrently under snapc_drain_workers > 1), while
	// scrub, restart and drain recovery take the write side. Capture
	// serialization is per job (Job.capMu), not cluster-wide.
	ckptMu  sync.RWMutex
	stopped bool
	wg      sync.WaitGroup
}

// New builds and starts a cluster: nodes, daemons and frameworks.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("runtime: cluster needs at least one node")
	}
	if cfg.Params == nil {
		cfg.Params = mca.NewParams()
	}
	if cfg.Stable == nil {
		cfg.Stable = vfs.NewMem()
	}
	// Ring-buffer bounds: only an explicitly-set parameter overrides
	// whatever caps the caller's instrumentation already carries
	// (<= 0 means unbounded).
	if cfg.Ins != nil {
		if s := cfg.Params.String("trace_max_events", ""); s != "" {
			cfg.Ins.TraceLog().SetMaxEvents(cfg.Params.Int("trace_max_events", trace.DefaultMaxEvents))
		}
		if s := cfg.Params.String("trace_max_spans", ""); s != "" {
			cfg.Ins.Spans.SetMaxSpans(cfg.Params.Int("trace_max_spans", trace.DefaultMaxSpans))
		}
	}
	// Fault plan: explicit injector wins, else the MCA parameter.
	inj := cfg.Faults
	if inj == nil {
		if spec := cfg.Params.String("fault_plan", ""); spec != "" {
			var err error
			if inj, err = faultsim.Parse(spec); err != nil {
				return nil, fmt.Errorf("runtime: fault_plan: %w", err)
			}
		}
	}
	if inj != nil {
		inj.SetInstr(cfg.Ins)
	}
	c := &Cluster{
		cfg:    cfg,
		ins:    cfg.Ins,
		params: cfg.Params,
		nodes:  make(map[string]*Node),
		stable: faultsim.WrapFS(cfg.Stable, inj, "stable"),
		faults: inj,
		router: rml.NewRouter(),
		ns:     names.NewService(),
		clock:  &netsim.Clock{},
		jobs:   make(map[names.JobID]*Job),
	}

	// Interconnect model.
	ingress := netsim.DefaultIngress
	if cfg.Ingress != nil {
		ingress = *cfg.Ingress
	}
	uplink := netsim.DefaultUplink
	if cfg.Uplink != nil {
		uplink = *cfg.Uplink
	}
	c.topo = netsim.NewTopology(ingress)
	for _, spec := range cfg.Nodes {
		if spec.Name == filem.StableNode {
			return nil, fmt.Errorf("runtime: node name %q is reserved", spec.Name)
		}
		if _, dup := c.nodes[spec.Name]; dup {
			return nil, fmt.Errorf("runtime: duplicate node %q", spec.Name)
		}
		n := &Node{Name: spec.Name, Slots: spec.Slots, FS: vfs.NewMem(),
			alive: true, stopHB: make(chan struct{})}
		n.fs = faultsim.WrapFS(n.FS, inj, spec.Name)
		c.nodes[spec.Name] = n
		c.order = append(c.order, spec.Name)
		c.topo.AddNode(spec.Name, uplink)
	}
	if inj != nil {
		c.topo.SetInject(inj.Fire)
		c.router.SetInject(inj.Fire)
		c.router.SetSendInject(inj.Fire)
	}

	// Framework selection (the MCA machinery the whole design rides on).
	var err error
	if c.snapcComp, err = snapc.NewFramework().Select(cfg.Params); err != nil {
		return nil, err
	}
	if c.filemComp, err = filem.NewFramework().Select(cfg.Params); err != nil {
		return nil, err
	}
	if c.plmComp, err = plm.NewFramework().Select(cfg.Params); err != nil {
		return nil, err
	}
	c.crsFw = crs.NewFramework()
	c.crcpFw = crcp.NewFramework()
	c.btlFw = btl.NewFramework()

	// FILEM/SNAPC environments. Retry/timeout knobs are MCA parameters so
	// experiments can sweep them without code changes.
	c.filemEnv = &filem.Env{
		Resolve: c.resolveFS,
		Topo:    c.topo,
		Clock:   c.clock,
		Ins:     c.ins,
		Retry: filem.RetryPolicy{
			Max:     cfg.Params.Int("filem_retry_max", 3),
			Backoff: cfg.Params.Duration("filem_retry_backoff", 2*time.Millisecond),
			Timeout: cfg.Params.Duration("filem_request_timeout", 0),
		},
	}
	if inj != nil {
		c.filemEnv.Inject = inj.Fire
	}
	c.snapcEnv = &snapc.Env{
		Filem:      c.filemComp,
		FilemEnv:   c.filemEnv,
		Stable:     c.stable,
		NodeFS:     c.nodeFS,
		Nodes:      c.AliveNodes,
		Ins:        c.ins,
		AckTimeout: cfg.Params.Duration("snapc_ack_timeout", 0),
	}
	c.replCount = make(map[string]int)
	if cfg.Params.Bool("snapc_replica_spread", false) {
		c.snapcEnv.Nodes = c.replicaCandidates
	}
	if inj != nil {
		c.snapcEnv.Inject = inj.Fire
	}
	// The durable HNP job ledger (hnp_ledger=false disables it): the
	// crash-safe record Reattach and the cold ompi-run --reattach path
	// rebuild the control plane from.
	if cfg.Params.Bool("hnp_ledger", true) {
		dir := cfg.Params.String("hnp_ledger_dir", ledger.DefaultDir)
		led, _, lerr := ledger.Open(c.stable, dir, ledger.Options{
			CompactAt: cfg.Params.Int("hnp_ledger_compact_at", 0),
		})
		if lerr != nil {
			return nil, fmt.Errorf("runtime: open HNP ledger: %w", lerr)
		}
		c.led = led
	}
	// Interval lifecycle events from the SNAPC layer write through to
	// the ledger: captures, commits, discards and replica placements.
	c.snapcEnv.Note = c.noteInterval

	// The asynchronous drain engine: captures hand their intervals to
	// this queue; its workers drain them under the read side of the
	// checkpoint lock, so commits never interleave with scrub or restart
	// yet different jobs' lineages may drain concurrently. An injected
	// HNP crash mid-drain takes the whole coordinator down with it.
	c.drainer = snapc.NewDrainer(c.snapcEnv, cfg.Params, c.ckptMu.RLocker())
	c.drainer.SetCrashHook(func(err error) { _ = c.CrashHNP(err) })

	// Runtime entities: HNP plus one orted (local coordinator) per node.
	if c.hnpEP, err = c.router.Register(names.HNP); err != nil {
		return nil, err
	}
	hbInterval := cfg.Params.Duration("orted_heartbeat_interval", 15*time.Millisecond)
	hbMiss := cfg.Params.Int("orted_heartbeat_miss", 20)
	c.hbInterval, c.hbMiss = hbInterval, hbMiss
	c.lastBeat = make(map[string]time.Time, len(c.order))
	c.daemons = make(map[string]names.Name, len(c.order))
	c.daemonEPs = make(map[string]*rml.Endpoint, len(c.order))
	// At control-plane scale, one goroutine + ticker per orted dominates
	// scheduler load; the batched pump coalesces every live node's beacon
	// into one RML message per interval. Auto-enabled at
	// batchHeartbeatNodes; orted_heartbeat_batch forces it either way.
	c.hbBatch = len(c.order) >= batchHeartbeatNodes
	if s := cfg.Params.String("orted_heartbeat_batch", ""); s != "" {
		c.hbBatch = cfg.Params.Bool("orted_heartbeat_batch", c.hbBatch)
	}
	c.pumpStop = make(chan struct{})
	for i, nodeName := range c.order {
		dn := names.Daemon(i)
		ep, err := c.router.Register(dn)
		if err != nil {
			return nil, err
		}
		c.daemons[nodeName] = dn
		c.daemonEPs[nodeName] = ep
		c.wg.Add(1)
		go func(nodeName string, ep *rml.Endpoint) {
			defer c.wg.Done()
			if err := c.snapcComp.ServeLocal(c.snapcEnv, nodeName, ep, c.resolveJob); err != nil {
				c.ins.Emit("orted["+nodeName+"]", "orted.error", "%v", err)
			}
		}(nodeName, ep)
		if !c.hbBatch {
			c.wg.Add(1)
			go c.heartbeatLoop(nodeName, ep, hbInterval, hbMiss, c.nodes[nodeName].stopHB)
		}
	}
	if c.hbBatch {
		c.wg.Add(1)
		go c.heartbeatPump(hbInterval)
	}
	c.wg.Add(1)
	go c.monitorLoop(c.hnpEP, hbInterval, hbMiss)
	c.ins.Emit("hnp", "cluster.up", "%d nodes", len(c.order))
	return c, nil
}

// ledgerAppend writes one control-plane record through to the durable
// job ledger. While the HNP is headless nothing is written — nobody is
// home to hold the pen — and Reattach reconciles the gap from the
// orteds' surviving state. Append failures (a stable-store outage)
// leave the record buffered in the ledger; Lag surfaces the debt.
func (c *Cluster) ledgerAppend(typ string, job int, payload any) {
	if c.led == nil {
		return
	}
	c.mu.Lock()
	headless := c.headless
	c.mu.Unlock()
	if headless {
		return
	}
	if err := c.led.Append(typ, job, payload); err != nil {
		c.ins.Counter("ompi_hnp_ledger_append_errors_total").Inc()
		c.ins.Emit("hnp", "ledger.lag", "%s buffered: %v", typ, err)
	}
}

// noteInterval maps SNAPC interval lifecycle notes onto ledger records.
func (c *Cluster) noteInterval(n snapc.IntervalNote) {
	switch n.Event {
	case "captured":
		c.ledgerAppend(ledger.TypeIntervalCaptured, int(n.Job), ledger.IntervalEvent{Interval: n.Interval})
	case "committed":
		c.ledgerAppend(ledger.TypeIntervalCommitted, int(n.Job), ledger.IntervalEvent{Interval: n.Interval})
	case "discarded":
		c.ledgerAppend(ledger.TypeIntervalDiscarded, int(n.Job), ledger.IntervalEvent{Interval: n.Interval})
	case "replicas", "stage-replicas":
		c.replMu.Lock()
		for _, node := range n.Nodes {
			c.replCount[node]++
		}
		c.replMu.Unlock()
		c.ledgerAppend(ledger.TypeReplicasPlaced, int(n.Job), ledger.ReplicasPlaced{Interval: n.Interval, Nodes: n.Nodes})
	}
}

// replicaCandidates is the replica-spreading candidate list: the alive
// nodes ordered by how many replicas each already holds (fewest first,
// declaration order breaking ties). snapshot.PlaceReplicas preserves
// relative candidate order within its off-job/on-job preference
// classes, so under snapc_replica_spread the least-burdened eligible
// node receives each new replica.
func (c *Cluster) replicaCandidates() []string {
	alive := c.AliveNodes()
	c.replMu.Lock()
	defer c.replMu.Unlock()
	sort.SliceStable(alive, func(i, j int) bool {
		return c.replCount[alive[i]] < c.replCount[alive[j]]
	})
	return alive
}

// Ledger exposes the HNP's durable job ledger (nil when disabled).
func (c *Cluster) Ledger() *ledger.Ledger { return c.led }

// heartbeat is the orted liveness beacon sent to the HNP. In batched
// mode one wire message carries every live node's beacon in Batch and
// the top-level fields are ignored.
type heartbeat struct {
	Node  string      `json:"node"`
	Seq   int         `json:"seq"`
	Batch []heartbeat `json:"batch,omitempty"`
}

// batchHeartbeatNodes is the cluster size at which the batched
// heartbeat pump replaces per-orted beacon goroutines by default.
const batchHeartbeatNodes = 128

// heartbeatPump is the batched replacement for per-node heartbeatLoop
// goroutines: a single ticker walks every live orted each interval,
// fires its pending "node.kill:<node>" faults (so fault plans behave
// identically in either mode), and coalesces the survivors' beacons
// into one RML message sent from the first live node's daemon
// endpoint. Send failures are tolerated quietly — a headless window or
// transient transport fault must not silence healthy orteds, and the
// HNP's detector owns the death declarations.
func (c *Cluster) heartbeatPump(interval time.Duration) {
	defer c.wg.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	seq := make(map[string]int, len(c.order))
	for {
		select {
		case <-c.pumpStop:
			return
		case <-tick.C:
		}
		var beats []heartbeat
		var sender *rml.Endpoint
		for _, node := range c.order {
			if !c.Alive(node) {
				continue
			}
			if err := c.faults.Fire("node.kill:" + node); err != nil {
				c.ins.Emit("orted["+node+"]", "node.kill", "injected: %v", err)
				_ = c.KillNode(node)
				continue
			}
			seq[node]++
			beats = append(beats, heartbeat{Node: node, Seq: seq[node]})
			if sender == nil {
				sender = c.daemonEPs[node]
			}
		}
		if len(beats) == 0 {
			// Every node is dead; nothing left to beat for.
			return
		}
		if err := sender.SendJSON(names.HNP, rml.TagHeartbeat, heartbeat{Batch: beats}); err != nil {
			c.mu.Lock()
			stopping := c.stopped
			c.mu.Unlock()
			if stopping {
				return
			}
		}
	}
}

// heartbeatLoop is the orted's liveness beacon: a periodic message to the
// HNP over the RML, the out-of-band channel ORTE daemons really keep
// open. A "node.kill:<node>" fault firing here kills the node abruptly —
// mid-checkpoint, mid-step, wherever the run happens to be.
//
// Send errors are NOT instant death: a transient transport failure (the
// "rml.send:<hnp>" injection point, or a congested OOB link) must not
// make a healthy orted silence itself. The loop tolerates up to `miss`
// consecutive send failures, backing off between retries, and only gives
// up — leaving the HNP's detector to declare the node lost — once the
// budget is exhausted or the router reports a permanent condition while
// the cluster is shutting down.
func (c *Cluster) heartbeatLoop(node string, ep *rml.Endpoint, interval time.Duration, miss int, stop chan struct{}) {
	defer c.wg.Done()
	if miss <= 0 {
		miss = 1
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	misses := 0
	backoff := interval / 4
	for seq := 1; ; seq++ {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		if err := c.faults.Fire("node.kill:" + node); err != nil {
			c.ins.Emit("orted["+node+"]", "node.kill", "injected: %v", err)
			_ = c.KillNode(node)
			return
		}
		if err := ep.SendJSON(names.HNP, rml.TagHeartbeat, heartbeat{Node: node, Seq: seq}); err != nil {
			c.mu.Lock()
			stopping := c.stopped
			headless := c.headless
			c.mu.Unlock()
			if stopping {
				return
			}
			if headless {
				// The HNP is gone, not the network: the orted stays up
				// and keeps beating quietly so a reattached coordinator
				// hears it immediately. No miss budget is charged — a
				// headless window must not make healthy orteds give up.
				misses = 0
				select {
				case <-stop:
					return
				case <-time.After(interval):
				}
				continue
			}
			misses++
			if misses >= miss {
				c.ins.Emit("orted["+node+"]", "heartbeat.giveup",
					"%d consecutive send failures, last: %v", misses, err)
				return
			}
			c.ins.Emit("orted["+node+"]", "heartbeat.miss",
				"send failure %d/%d: %v", misses, miss, err)
			select {
			case <-stop:
				return
			case <-time.After(backoff):
			}
			if backoff < interval {
				backoff *= 2
			}
			continue
		}
		misses = 0
		backoff = interval / 4
	}
}

// monitorLoop is the HNP's failure detector: it consumes heartbeats and
// declares a node lost once it misses `miss` consecutive intervals. The
// declaration is what the rest of the runtime keys off — the HNP never
// hears about a death directly, exactly like a real mpirun watching its
// orted connections go quiet.
func (c *Cluster) monitorLoop(ep *rml.Endpoint, interval time.Duration, miss int) {
	defer c.wg.Done()
	if miss <= 0 {
		miss = 1
	}
	lastSeen := make(map[string]time.Time, len(c.order))
	declared := make(map[string]bool, len(c.order))
	start := time.Now()
	for _, n := range c.order {
		lastSeen[n] = start
	}
	lastScan := start
	for {
		var hb heartbeat
		_, err := ep.RecvJSONTimeout(rml.TagHeartbeat, &hb, interval)
		now := time.Now()
		switch {
		case err == nil && len(hb.Batch) > 0:
			c.hbMu.Lock()
			for _, b := range hb.Batch {
				lastSeen[b.Node] = now
				c.lastBeat[b.Node] = now
			}
			c.hbMu.Unlock()
		case err == nil:
			lastSeen[hb.Node] = now
			c.hbMu.Lock()
			c.lastBeat[hb.Node] = now
			c.hbMu.Unlock()
		case errors.Is(err, rml.ErrTimeout):
			// quiet interval; fall through to the scan
		default:
			return // endpoint closed: cluster is shutting down
		}
		// If the detector itself stalled (descheduled, GC pause), it could
		// not have observed beacons sent meanwhile; charging that silence
		// to the nodes would declare healthy nodes dead. Credit every node
		// with the unobservable window instead.
		if pause := now.Sub(lastScan) - interval; pause > interval {
			for n, ts := range lastSeen {
				lastSeen[n] = ts.Add(pause)
			}
		}
		lastScan = now
		cutoff := now.Add(-time.Duration(miss) * interval)
		if c.hbBatch {
			// In batch mode one message carries every live node's beat,
			// so individual liveness is relative: a dead node is one
			// missing from batches whose other members stayed fresh.
			// Every node stale at once means no batch arrived at all —
			// a descheduled pump under CPU oversubscription (thousands
			// of rank goroutines at 1k+ nodes), not mass node death.
			// Credit the unobservable window rather than declaring a
			// healthy cluster dead.
			fresh := false
			for _, n := range c.order {
				if !declared[n] && !lastSeen[n].Before(cutoff) {
					fresh = true
					break
				}
			}
			if !fresh {
				for n := range lastSeen {
					if !declared[n] {
						lastSeen[n] = now
					}
				}
				continue
			}
		}
		for _, n := range c.order {
			if declared[n] || !lastSeen[n].Before(cutoff) {
				continue
			}
			declared[n] = true
			c.ins.Emit("hnp", "node.lost", "node %q missed %d heartbeats, declaring it down", n, miss)
			_ = c.KillNode(n)
		}
	}
}

// KillNode simulates abrupt node death: the orted vanishes from the RML,
// heartbeats stop, and every running job with ranks on the node aborts
// (its surviving ranks fail in communication, as when mpirun reaps a
// parallel job after losing a process). Idempotent; the node stays dead
// and is excluded from subsequent placements.
func (c *Cluster) KillNode(node string) error {
	c.mu.Lock()
	n, ok := c.nodes[node]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("runtime: unknown node %q", node)
	}
	if !n.alive {
		c.mu.Unlock()
		return nil
	}
	n.alive = false
	headless := c.headless
	if headless {
		c.pendingDeaths = append(c.pendingDeaths, node)
	}
	c.mu.Unlock()
	n.stopHeartbeat()
	c.router.Deregister(c.daemons[node])
	if headless {
		// Nobody is watching: the node is dead (its orted vanished, its
		// filesystem is unreachable) but the coordinator-side reaction —
		// recovery sessions, whole-job aborts, the ledger record — waits
		// for Reattach to process the deferred death.
		c.ins.Emit("runtime", "node.down",
			"node %q died while the HNP is down; death deferred to reattach", node)
		return nil
	}
	c.ins.Emit("runtime", "node.down", "node %q is dead", node)
	c.ledgerAppend(ledger.TypeNodeDead, 0, ledger.NodeDead{Node: node})
	c.processNodeDeath(node)
	return nil
}

// processNodeDeath runs the per-job reaction to a node-down
// declaration: a job with a recovery handler survives the loss in-job
// (the handler freezes it, respawns the lost ranks, and re-knits);
// without one, losing a node kills the whole job (pre-recovery
// semantics, and the fallback when recovery itself fails). Split from
// KillNode so Reattach can replay deaths deferred from a headless
// window.
func (c *Cluster) processNodeDeath(node string) {
	c.mu.Lock()
	var victims []*Job
	for _, j := range c.jobs {
		if !j.Done() && j.hasRanksOn(node) {
			victims = append(victims, j)
		}
	}
	c.mu.Unlock()
	for _, j := range victims {
		if j.onNodeDeath(node) {
			continue
		}
		c.ins.Emit("runtime", "job.abort", "job %d lost node %q", j.id, node)
		j.closeFabric()
	}
}

// CrashHNP simulates the coordinator process dying while the orteds and
// the ranks keep running: the HNP endpoint vanishes from the RML (the
// orteds' heartbeats start bouncing, exactly like a dead mpirun's TCP
// connections), the failure detector stops, and the drain engine fails
// its queue. Node-local state — sealed stages, stage replicas, running
// ranks — is untouched; Reattach rebuilds the control plane from the
// durable ledger plus orted re-registration. Idempotent.
func (c *Cluster) CrashHNP(cause error) error {
	c.mu.Lock()
	if c.stopped || c.headless {
		c.mu.Unlock()
		return nil
	}
	c.headless = true
	c.headlessCause = cause
	c.crashedAt = time.Now()
	drainer := c.drainer
	c.mu.Unlock()
	// Dying gasp: the crash marker may or may not land on the ledger;
	// nothing downstream depends on it (Reattach reconstructs from the
	// regular records either way). Written directly — ledgerAppend
	// already considers the HNP gone.
	if c.led != nil {
		_ = c.led.Append(ledger.TypeHNPCrashed, 0, ledger.CrashEvent{Cause: fmt.Sprint(cause)})
	}
	c.router.Deregister(names.HNP) // monitorLoop exits; heartbeats bounce
	drainer.Crash(cause)
	c.ins.Gauge("ompi_hnp_headless").Set(1)
	c.ins.Counter("ompi_hnp_crashes_total").Inc()
	c.ins.Emit("hnp", "hnp.crash", "HNP down: %v", cause)
	return nil
}

// Headless reports whether the HNP is down (crashed and not yet
// reattached). The orteds and ranks keep running; coordinator
// operations fail with snapc.ErrHNPDown.
func (c *Cluster) Headless() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.headless
}

// headlessErr returns the error coordinator entry points fail with
// while the HNP is down, nil otherwise.
func (c *Cluster) headlessErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.headless {
		return fmt.Errorf("runtime: %w", snapc.ErrHNPDown)
	}
	return nil
}

// Alive reports whether the named node is still up.
func (c *Cluster) Alive(node string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[node]
	return ok && n.alive
}

// AliveNodes returns the surviving node names in declaration order.
func (c *Cluster) AliveNodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.order))
	for _, name := range c.order {
		if c.nodes[name].alive {
			out = append(out, name)
		}
	}
	return out
}

// Faults returns the installed fault injector (nil without a plan).
func (c *Cluster) Faults() *faultsim.Injector { return c.faults }

// Close shuts the cluster down: pending drains finish, daemons stop,
// endpoints close.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	drainer := c.drainer
	c.mu.Unlock()
	drainer.Close()
	_ = c.led.Flush() // nil-safe; land any buffered ledger records
	c.pumpOnce.Do(func() { close(c.pumpStop) })
	for _, n := range c.nodes {
		n.stopHeartbeat()
	}
	c.router.Close()
	c.wg.Wait()
}

// Drainer exposes the cluster's asynchronous drain engine. Reattach
// replaces the engine wholesale, so callers must not cache the pointer
// across an HNP crash.
func (c *Cluster) Drainer() *snapc.Drainer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drainer
}

// FlushDrains blocks until every enqueued interval has drained.
func (c *Cluster) FlushDrains() { c.Drainer().Flush() }

// SetJobDrainWeight sets a job's checkpoint-drain QoS weight: the SFQ
// scheduler grants the job's lineage a weight-proportional share of
// drain bandwidth when multiple jobs checkpoint concurrently. Weights
// below 1 clamp to 1; the setting applies to intervals enqueued after
// the call and survives until the HNP crashes (a reattached drain
// engine starts from the per-job snapc_sched_weight parameters again).
func (c *Cluster) SetJobDrainWeight(id names.JobID, weight int) {
	c.Drainer().SetWeight(snapshot.GlobalDirName(int(id)), weight)
}

// SchedFlows exposes the drain scheduler's per-lineage state for the
// control plane's sched op.
func (c *Cluster) SchedFlows() []sched.FlowState { return c.Drainer().SchedFlows() }

// hnpEndpoint returns the HNP's current RML endpoint (replaced by
// Reattach after a crash).
func (c *Cluster) hnpEndpoint() *rml.Endpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hnpEP
}

// RecoverDrains resolves a lineage's undrained journal entries against
// this cluster's surviving nodes: fast-forward already-committed
// intervals, re-drain from intact local stages, discard the rest. The
// drain queue must be idle (flush first).
func (c *Cluster) RecoverDrains(globalDir string) (snapc.RecoverReport, error) {
	// Abandon in-memory sub-stable holds first: recovery owns the
	// lineage's CAPTURED entries and re-drains or discards them from the
	// on-disk state alone, exactly as after a crash.
	c.Drainer().DropHeld(globalDir)
	c.ckptMu.Lock()
	defer c.ckptMu.Unlock()
	return snapc.Recover(c.snapcEnv, globalDir, c.Alive)
}

// Nodes returns the node names in declaration order.
func (c *Cluster) Nodes() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// NodeSpecs returns the launch specs of the surviving nodes: dead nodes
// are excluded, so placement (including restart re-placement) only ever
// targets live machines. Each spec carries the node's current Load —
// ranks of still-running jobs placed there — so the loadaware PLM
// component can spread concurrent jobs across the cluster.
func (c *Cluster) NodeSpecs() []plm.NodeSpec {
	c.mu.Lock()
	jobs := make([]*Job, 0, len(c.jobs))
	for _, j := range c.jobs {
		jobs = append(jobs, j)
	}
	out := make([]plm.NodeSpec, 0, len(c.order))
	for _, n := range c.order {
		if !c.nodes[n].alive {
			continue
		}
		out = append(out, plm.NodeSpec{Name: n, Slots: c.nodes[n].Slots})
	}
	c.mu.Unlock()
	load := make(map[string]int)
	for _, j := range jobs {
		if j.Done() {
			continue
		}
		j.mu.Lock()
		for _, node := range j.placement {
			load[node]++
		}
		j.mu.Unlock()
	}
	for i := range out {
		out[i].Load = load[out[i].Name]
	}
	return out
}

// Stable returns the stable-storage filesystem.
func (c *Cluster) Stable() vfs.FS { return c.stable }

// WithCheckpointLock runs fn while holding the global-checkpoint mutex,
// so maintenance passes that rewrite snapshot directories (scrub,
// repair) never interleave with a commit or its replica pushes.
func (c *Cluster) WithCheckpointLock(fn func()) {
	c.ckptMu.Lock()
	defer c.ckptMu.Unlock()
	fn()
}

// Clock returns the simulated-network clock.
func (c *Cluster) Clock() *netsim.Clock { return c.clock }

// Log returns the cluster trace event log (may be nil).
func (c *Cluster) Log() *trace.Log { return c.ins.TraceLog() }

// Ins returns the cluster instrumentation (may be nil).
func (c *Cluster) Ins() *trace.Instrumentation { return c.ins }

func (c *Cluster) resolveFS(node string) (vfs.FS, error) {
	if node == filem.StableNode {
		return c.stable, nil
	}
	return c.nodeFS(node)
}

// NodeFS resolves a live node's local filesystem (fault-wrapped when a
// plan is installed). Dead nodes resolve to an error, which is exactly
// what the replica resolver needs: a copy on a dead node is unreadable.
func (c *Cluster) NodeFS(node string) (vfs.FS, error) { return c.nodeFS(node) }

func (c *Cluster) nodeFS(node string) (vfs.FS, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[node]
	if !ok {
		return nil, fmt.Errorf("runtime: unknown node %q", node)
	}
	if !n.alive {
		return nil, fmt.Errorf("runtime: node %q is down", node)
	}
	return n.fs, nil
}

func (c *Cluster) resolveJob(id names.JobID) (snapc.JobView, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return nil, fmt.Errorf("runtime: unknown job %d", id)
	}
	return j, nil
}

// Job returns a running (or finished, not yet forgotten) job by id.
func (c *Cluster) Job(id names.JobID) (*Job, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return nil, fmt.Errorf("runtime: unknown job %d", id)
	}
	return j, nil
}

// JobIDs lists the ids of all known jobs in ascending order (ids are
// allocated sequentially, so the last element is the newest job).
func (c *Cluster) JobIDs() []names.JobID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]names.JobID, 0, len(c.jobs))
	for id := range c.jobs {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
