package runtime

import (
	"strings"
	"testing"
	"time"

	"repro/internal/mca"
	"repro/internal/trace"
)

func TestKillNodeAbortsJobAndShrinksCluster(t *testing.T) {
	c := fourNodeCluster(t, nil)
	factory, _ := newStencilFactory(0, 0) // runs until terminated
	job, err := c.Launch(JobSpec{Name: "stencil", NP: 8, AppFactory: factory})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if err := c.KillNode("n2"); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	// The job had ranks on n2, so it aborts rather than hanging.
	if err := job.Wait(); err == nil {
		t.Error("job survived losing a node that held its ranks")
	}
	if c.Alive("n2") {
		t.Error("n2 still reported alive")
	}
	alive := c.AliveNodes()
	if len(alive) != 3 {
		t.Errorf("AliveNodes = %v, want 3 survivors", alive)
	}
	for _, n := range alive {
		if n == "n2" {
			t.Error("dead node listed among the living")
		}
	}
	// Restart-capable bookkeeping: specs only cover survivors, so a
	// relaunch lands on live nodes.
	for _, spec := range c.NodeSpecs() {
		if spec.Name == "n2" {
			t.Error("NodeSpecs includes the dead node")
		}
	}
	if _, err := c.nodeFS("n2"); err == nil {
		t.Error("filesystem of a dead node still resolvable")
	}
	// Killing it again is a harmless no-op; killing a stranger is not.
	if err := c.KillNode("n2"); err != nil {
		t.Errorf("second KillNode: %v", err)
	}
	if err := c.KillNode("ghost"); err == nil {
		t.Error("KillNode accepted an unknown node")
	}
}

func TestLaunchRefusesDeadNodePlacement(t *testing.T) {
	c := fourNodeCluster(t, nil)
	if err := c.KillNode("n1"); err != nil {
		t.Fatal(err)
	}
	factory, _ := newStencilFactory(2, 0)
	// 8 ranks need all four nodes' slots; with n1 dead only 6 remain.
	_, err := c.Launch(JobSpec{Name: "stencil", NP: 8, AppFactory: factory})
	if err == nil {
		t.Fatal("Launch oversubscribed a cluster missing a node")
	}
	// A job that fits the survivors launches and completes.
	job, err := c.Launch(JobSpec{Name: "stencil", NP: 6, AppFactory: factory})
	if err != nil {
		t.Fatalf("Launch on survivors: %v", err)
	}
	if err := job.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	for _, n := range job.Nodes() {
		if n == "n1" {
			t.Error("rank placed on the dead node")
		}
	}
}

// waitForEvent polls the trace log until an event of the given kind
// appears or the deadline passes.
func waitForEvent(t *testing.T, log *trace.Log, kind string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if log.Count(kind) > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no %q event within %v (kinds: %v)", kind, timeout, log.Kinds(""))
}

func TestInjectedNodeKillIsDetectedByHeartbeatMonitor(t *testing.T) {
	params := mca.NewParams()
	params.Set("orted_heartbeat_interval", "2ms")
	params.Set("orted_heartbeat_miss", "4")
	// The fault plan kills n3 at its 3rd heartbeat tick; the HNP's
	// monitor must then declare it lost from silence alone.
	params.Set("fault_plan", "seed=5; node.kill:n3=after2,once")
	c := fourNodeCluster(t, params)
	log := c.Log()

	factory, _ := newStencilFactory(0, 0) // runs until terminated
	job, err := c.Launch(JobSpec{Name: "stencil", NP: 8, AppFactory: factory})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	waitForEvent(t, log, "node.kill", time.Second)
	waitForEvent(t, log, "node.down", time.Second)
	waitForEvent(t, log, "node.lost", 2*time.Second)
	if err := job.Wait(); err == nil {
		t.Error("job survived the injected node kill")
	}
	if c.Alive("n3") {
		t.Error("n3 still alive after injected kill")
	}
	if c.Faults() == nil || c.Faults().Fired("node.kill") != 1 {
		t.Error("injector did not record the node.kill firing")
	}
	// The kill event names the node it took down.
	found := false
	for _, e := range log.Events() {
		if e.Kind == "node.lost" && strings.Contains(e.Detail, "n3") {
			found = true
			break
		}
	}
	if !found {
		t.Error("node.lost event does not name n3")
	}
}
