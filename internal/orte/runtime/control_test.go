package runtime

import (
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/mca"
	"repro/internal/ompi"
	"repro/internal/orte/plm"
	"repro/internal/trace"
)

func controlFixture(t *testing.T) (*Cluster, *ControlServer, *Job) {
	t.Helper()
	c, err := New(Config{
		Nodes: []plm.NodeSpec{{Name: "n0", Slots: 4}, {Name: "n1", Slots: 4}},
		Ins:   trace.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	srv, err := c.ServeControl("", false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	factory, _ := newStencilFactory(0, 0)
	job, err := c.Launch(JobSpec{Name: "stencil", NP: 4, AppFactory: factory})
	if err != nil {
		t.Fatal(err)
	}
	return c, srv, job
}

func TestControlPing(t *testing.T) {
	_, srv, _ := controlFixture(t)
	resp, err := ControlDial(srv.Addr(), ControlRequest{Op: "ping"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Errorf("ping: %+v", resp)
	}
}

func TestControlUnknownOp(t *testing.T) {
	_, srv, _ := controlFixture(t)
	resp, err := ControlDial(srv.Addr(), ControlRequest{Op: "reboot"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Err, "unknown op") {
		t.Errorf("resp = %+v", resp)
	}
}

func TestControlPsAndCheckpoint(t *testing.T) {
	c, srv, job := controlFixture(t)
	resp, err := ControlDial(srv.Addr(), ControlRequest{Op: "ps"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || len(resp.Jobs) != 1 || resp.Jobs[0].App != "stencil" || resp.Jobs[0].NP != 4 {
		t.Fatalf("ps = %+v", resp)
	}
	if resp.Jobs[0].Done {
		t.Error("job reported done while running")
	}

	// Checkpoint with job 0 = "the only job".
	ck, err := ControlDial(srv.Addr(), ControlRequest{Op: "checkpoint"})
	if err != nil {
		t.Fatal(err)
	}
	if !ck.OK || ck.GlobalRef == "" {
		t.Fatalf("checkpoint = %+v", ck)
	}
	// ps now shows one checkpoint taken.
	resp, err = ControlDial(srv.Addr(), ControlRequest{Op: "ps"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Jobs[0].Ckpts != 1 {
		t.Errorf("ckpts = %d, want 1", resp.Jobs[0].Ckpts)
	}

	// Terminate over the wire.
	ck2, err := ControlDial(srv.Addr(), ControlRequest{Op: "checkpoint", Terminate: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ck2.OK || ck2.Interval != 1 {
		t.Fatalf("checkpoint --term = %+v", ck2)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	_ = c
}

func TestControlCheckpointExplicitJob(t *testing.T) {
	_, srv, job := controlFixture(t)
	ck, err := ControlDial(srv.Addr(), ControlRequest{Op: "checkpoint", Job: int(job.JobID()), Terminate: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ck.OK {
		t.Fatalf("checkpoint = %+v", ck)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	// Unknown job id fails.
	bad, err := ControlDial(srv.Addr(), ControlRequest{Op: "checkpoint", Job: 777})
	if err != nil {
		t.Fatal(err)
	}
	if bad.OK {
		t.Error("checkpoint of unknown job succeeded")
	}
}

func TestControlRanksAndMigrate(t *testing.T) {
	_, srv, job := controlFixture(t)
	resp, err := ControlDial(srv.Addr(), ControlRequest{Op: "ranks"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || len(resp.Ranks) != 4 {
		t.Fatalf("ranks = %+v", resp)
	}
	for i, r := range resp.Ranks {
		if r.Rank != i || r.Node == "" {
			t.Errorf("rank row %d = %+v", i, r)
		}
		if r.State != string(RankRunning) {
			t.Errorf("rank %d state = %q, want running", i, r.State)
		}
		if r.Interval != -1 {
			t.Errorf("rank %d interval = %d before first checkpoint", i, r.Interval)
		}
	}

	// Migrate without a target node is rejected.
	bad, err := ControlDial(srv.Addr(), ControlRequest{Op: "migrate", Rank: 1})
	if err != nil {
		t.Fatal(err)
	}
	if bad.OK || !strings.Contains(bad.Err, "target node") {
		t.Errorf("migrate without node = %+v", bad)
	}
	// Migrate on a job with no recovery handler fails cleanly.
	bad, err = ControlDial(srv.Addr(), ControlRequest{Op: "migrate", Rank: 1, Node: "n1"})
	if err != nil {
		t.Fatal(err)
	}
	if bad.OK || !strings.Contains(bad.Err, "recovery handler") {
		t.Errorf("migrate without handler = %+v", bad)
	}
	ck, err := ControlDial(srv.Addr(), ControlRequest{Op: "checkpoint", Terminate: true})
	if err != nil || !ck.OK {
		t.Fatalf("checkpoint: %v %+v", err, ck)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	// After completion the per-rank view reports the final states.
	resp, err = ControlDial(srv.Addr(), ControlRequest{Op: "ranks"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range resp.Ranks {
		if r.State != string(RankDone) {
			t.Errorf("rank %d state = %q after completion", r.Rank, r.State)
		}
		if r.Interval != 0 {
			t.Errorf("rank %d interval = %d, want 0", r.Rank, r.Interval)
		}
	}
}

func TestControlSessionRegistration(t *testing.T) {
	c, err := New(Config{
		Nodes: []plm.NodeSpec{{Name: "n0", Slots: 2}},
		Ins:   trace.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv, err := c.ServeControl("", true)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := ResolveSession(os.Getpid())
	if err != nil {
		t.Fatalf("ResolveSession: %v", err)
	}
	if addr != srv.Addr() {
		t.Errorf("session addr = %q, want %q", addr, srv.Addr())
	}
	srv.Close()
	if _, err := ResolveSession(os.Getpid()); err == nil {
		t.Error("session file survived Close")
	}
}

func TestControlDialErrors(t *testing.T) {
	if _, err := ControlDial("127.0.0.1:1", ControlRequest{Op: "ping"}); err == nil {
		t.Error("dial to dead port succeeded")
	}
	if _, err := ResolveSession(-42); err == nil {
		t.Error("ResolveSession of bogus pid succeeded")
	}
}

// A client that connects and then says nothing must not hold a server
// goroutine forever: the control_timeout read deadline kicks in, the
// server answers with a bad-request error (or just closes), and normal
// clients keep being served.
func TestControlSlowClientGetsDeadlined(t *testing.T) {
	params := mca.NewParams()
	params.Set("control_timeout", "100ms")
	c, err := New(Config{
		Nodes:  []plm.NodeSpec{{Name: "n0", Slots: 2}},
		Params: params,
		Ins:    trace.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv, err := c.ServeControl("", false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing. Within a few deadline periods the server must give
	// up on us: either an error reply or a plain close, but not a hang.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil && !errors.Is(err, io.EOF) {
		t.Fatalf("server neither replied nor closed the idle conn: %v", err)
	}
	if n > 0 && !strings.Contains(string(buf[:n]), "bad request") {
		t.Errorf("idle conn reply = %q, want a bad-request error", buf[:n])
	}
	// The server is still healthy for well-behaved clients.
	resp, err := ControlDial(srv.Addr(), ControlRequest{Op: "ping"})
	if err != nil || !resp.OK {
		t.Fatalf("ping after slow client: %v %+v", err, resp)
	}
}

// ControlDialTimeout against a listener that accepts and never replies
// must fail within the timeout instead of blocking forever.
func TestControlDialTimeoutHangingServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold it open, say nothing
		}
	}()
	start := time.Now()
	_, err = ControlDialTimeout(ln.Addr().String(), ControlRequest{Op: "ping"}, 100*time.Millisecond)
	if err == nil {
		t.Fatal("dial to a hanging server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("hung for %v, want prompt failure", elapsed)
	}
}

func TestControlHealthOp(t *testing.T) {
	_, srv, _ := controlFixture(t)
	resp, err := ControlDial(srv.Addr(), ControlRequest{Op: "health"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Health == nil {
		t.Fatalf("health = %+v", resp)
	}
	h := resp.Health
	if h.Headless || h.StoreDegraded {
		t.Errorf("fresh cluster health = %+v, want up and store ok", h)
	}
	if len(h.Nodes) != 2 {
		t.Errorf("health nodes = %d, want 2", len(h.Nodes))
	}
	if h.LedgerSeq <= 0 {
		t.Errorf("ledger seq = %d, want >0 after a launch", h.LedgerSeq)
	}
}

// A session file left behind by a crashed mpirun is listed by
// ScanSessions but fails the liveness probe — the classification
// `ompi-run --reattach` uses to tell an adoptable corpse from a live
// coordinator it must refuse to fight.
func TestScanSessionsStaleFileFailsProbe(t *testing.T) {
	if err := os.MkdirAll(SessionDir(), 0o755); err != nil {
		t.Fatal(err)
	}
	const pid = 999999999
	stale := filepath.Join(SessionDir(), "999999999.addr")
	if err := os.WriteFile(stale, []byte("127.0.0.1:1"), 0o644); err != nil {
		t.Fatal(err)
	}
	defer os.Remove(stale)
	sessions, err := ScanSessions()
	if err != nil {
		t.Fatal(err)
	}
	addr, ok := sessions[pid]
	if !ok {
		t.Fatalf("stale session file not listed: %v", sessions)
	}
	if _, err := ControlDialTimeout(addr, ControlRequest{Op: "ping"}, 500*time.Millisecond); err == nil {
		t.Error("probe of a dead session address succeeded")
	}
	// A live server at the same address flips the verdict.
	c, err := New(Config{Nodes: []plm.NodeSpec{{Name: "n0", Slots: 1}}, Ins: trace.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv, err := c.ServeControl("", false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := os.WriteFile(stale, []byte(srv.Addr()), 0o644); err != nil {
		t.Fatal(err)
	}
	sessions, err = ScanSessions()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ControlDialTimeout(sessions[pid], ControlRequest{Op: "ping"}, 2*time.Second)
	if err != nil || !resp.OK {
		t.Errorf("probe of a live session failed: %v %+v", err, resp)
	}
}

var _ = ompi.FuncApp{}

// TestControlLegacyUnversionedRequest speaks the pre-envelope dialect
// raw over the socket: a bare ControlRequest must still get a bare
// ControlResponse, so tools built before the envelope keep working.
func TestControlLegacyUnversionedRequest(t *testing.T) {
	_, srv, _ := controlFixture(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(`{"op":"ps"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	buf, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	body := string(buf)
	if strings.Contains(body, `"v":`) {
		t.Fatalf("legacy request answered with versioned reply: %s", body)
	}
	if !strings.Contains(body, `"ok":true`) || !strings.Contains(body, "stencil") {
		t.Fatalf("legacy ps reply = %s", body)
	}
}

// TestControlEnvelopeVersionRejected: a request claiming a future
// protocol version must be refused, not half-parsed.
func TestControlEnvelopeVersionRejected(t *testing.T) {
	_, srv, _ := controlFixture(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(`{"v":99,"op":"ps"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	buf, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	body := string(buf)
	if !strings.Contains(body, "not supported") {
		t.Fatalf("future-version reply = %s", body)
	}
}

// TestControlJobsAndSchedOps drives the job-scoped ops end to end:
// "jobs" joins ps columns with scheduler state, "sched" sets a weight
// and returns the flow table.
func TestControlJobsAndSchedOps(t *testing.T) {
	c, srv, job := controlFixture(t)
	// One committed checkpoint so the job's lineage exists in the
	// scheduler's history.
	if _, err := ControlDial(srv.Addr(), ControlRequest{Op: "checkpoint"}); err != nil {
		t.Fatal(err)
	}
	c.FlushDrains()

	resp, err := ControlDial(srv.Addr(), ControlRequest{Op: "jobs"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || len(resp.Jobs) != 1 || resp.Jobs[0].App != "stencil" {
		t.Fatalf("jobs = %+v", resp)
	}
	if resp.Jobs[0].Weight < 1 {
		t.Errorf("jobs row missing scheduler weight: %+v", resp.Jobs[0])
	}

	// Filter to a job that does not exist.
	resp, err = ControlDial(srv.Addr(), ControlRequest{Op: "jobs", Job: 999})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Err, "no job") {
		t.Fatalf("jobs --job 999 = %+v", resp)
	}

	// sched with a weight update: the next enqueue for the job uses it,
	// and the reply carries the flow table and worker count.
	resp, err = ControlDial(srv.Addr(), ControlRequest{Op: "sched", Job: int(job.JobID()), Weight: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Sched == nil || resp.Sched.Workers < 1 {
		t.Fatalf("sched = %+v", resp)
	}
	if len(resp.Sched.Flows) != 1 || resp.Sched.Flows[0].ServedCost <= 0 {
		t.Fatalf("sched flows = %+v", resp.Sched.Flows)
	}
	if _, err := ControlDial(srv.Addr(), ControlRequest{Op: "checkpoint"}); err != nil {
		t.Fatal(err)
	}
	c.FlushDrains()
	resp, err = ControlDial(srv.Addr(), ControlRequest{Op: "sched"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || len(resp.Sched.Flows) != 1 || resp.Sched.Flows[0].Weight != 7 {
		t.Fatalf("weight update not applied: %+v", resp.Sched)
	}
}
