// HNP crash recovery: rebuilding the coordinator over a still-running
// cluster. CrashHNP (runtime.go) tears the control plane down; Reattach
// here is the inverse — re-register the HNP endpoint, shake hands with
// the surviving orteds, replay deaths deferred from the headless
// window, abort recovery sessions stranded by the crash, and resolve
// the checkpoint journal (including entries rebuilt from sealed stages
// the crashed coordinator never journaled). The durable job ledger is
// the source of truth the reconciliation is checked against.
package runtime

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core/snapshot"
	"repro/internal/orte/ledger"
	"repro/internal/orte/names"
	"repro/internal/orte/snapc"
)

// ReattachReport summarizes what Reattach rebuilt.
type ReattachReport struct {
	// Down is how long the HNP was headless.
	Down time.Duration
	// Nodes lists the orteds that answered the reattach handshake.
	Nodes []string
	// DeclaredDead lists nodes silent through the handshake deadline,
	// declared down by the reattached HNP.
	DeclaredDead []string
	// DeferredDeaths lists node deaths that happened while the HNP was
	// down and were processed at reattach.
	DeferredDeaths []string
	// AbortedSessions counts recovery sessions stranded by the crash
	// and aborted into the whole-job fallback.
	AbortedSessions int
	// RebuiltEntries counts journal entries reconstructed from sealed
	// node-local stages the crashed coordinator never journaled.
	RebuiltEntries int
	// Recovered accumulates the journal resolution across every job
	// lineage: intervals fast-forwarded, re-drained, or discarded.
	Recovered snapc.RecoverReport
}

// Reattach rebuilds a crashed HNP over the still-running cluster: the
// paper's coordinator, made crash-safe. The orteds kept their ranks
// computing and their sealed stages intact through the headless window;
// this pass re-registers the HNP endpoint, restarts the failure
// detector, swaps in a fresh drain engine, waits for every surviving
// orted's heartbeat (silent nodes are declared dead), processes deaths
// deferred from the window, aborts recovery sessions the crash
// stranded, fences stale checkpoint directives, and resolves every
// job's drain journal — rebuilding entries for intervals whose capture
// outlived the coordinator. No COMMITTED interval is ever lost; at most
// the interval in flight at the crash is discarded or re-drained.
func (c *Cluster) Reattach() (ReattachReport, error) {
	var rep ReattachReport
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return rep, fmt.Errorf("runtime: cluster is stopped")
	}
	if !c.headless {
		c.mu.Unlock()
		return rep, fmt.Errorf("runtime: HNP is not down; nothing to reattach")
	}
	crashedAt := c.crashedAt
	rep.Down = time.Since(crashedAt)
	ep, err := c.router.Register(names.HNP)
	if err != nil {
		c.mu.Unlock()
		return rep, fmt.Errorf("runtime: re-register HNP: %w", err)
	}
	c.hnpEP = ep
	pending := c.pendingDeaths
	c.pendingDeaths = nil
	c.headless = false
	c.headlessCause = nil
	// A fresh drain engine: the crashed one failed its queue and is
	// terminal. Swapped under the lock so concurrent Drainer() callers
	// never see a torn pointer.
	oldDrainer := c.drainer
	c.drainer = snapc.NewDrainer(c.snapcEnv, c.params, c.ckptMu.RLocker())
	c.drainer.SetCrashHook(func(err error) { _ = c.CrashHNP(err) })
	c.mu.Unlock()
	oldDrainer.Close()

	// A fresh failure detector on the new endpoint.
	reattachedAt := time.Now()
	c.wg.Add(1)
	go c.monitorLoop(ep, c.hbInterval, c.hbMiss)

	// Handshake: every node believed alive must be heard from before the
	// reattached HNP trusts its view. The orteds kept beating through
	// the window, so a healthy node answers within one heartbeat
	// interval; a node silent through the deadline died unnoticed while
	// nobody was watching and is declared down now.
	timeout := c.params.Duration("hnp_reattach_timeout",
		2*time.Duration(c.hbMiss)*c.hbInterval)
	deadline := time.Now().Add(timeout)
	for {
		missing := c.silentSince(reattachedAt)
		if len(missing) == 0 {
			break
		}
		if time.Now().After(deadline) {
			for _, n := range missing {
				c.ins.Emit("hnp", "reattach.silent",
					"node %q silent through the reattach handshake; declaring it down", n)
				_ = c.KillNode(n)
				rep.DeclaredDead = append(rep.DeclaredDead, n)
			}
			break
		}
		time.Sleep(c.hbInterval / 4)
	}
	rep.Nodes = c.AliveNodes()

	// Recovery sessions stranded by the crash: their coordinating
	// goroutine was cut off mid-session (the injected crash fires before
	// any order is delivered), so the parked survivors would otherwise
	// wait out the order timeout. Abort them into the whole-job
	// fallback. Sessions started after the reattach (by the deferred
	// deaths below) are newer than the crash and are left alone.
	for _, id := range c.JobIDs() {
		j, err := c.Job(id)
		if err != nil || j.Done() {
			continue
		}
		if s := j.Recovery(); s != nil && s.DetectedAt().Before(crashedAt) {
			j.AbortRecovery(fmt.Errorf("runtime: %w during recovery; falling back", snapc.ErrHNPCrashed))
			rep.AbortedSessions++
		}
	}

	// Deaths deferred from the headless window: ledger record first,
	// then the per-job reaction (recovery session or whole-job abort).
	for _, node := range pending {
		c.ledgerAppend(ledger.TypeNodeDead, 0, ledger.NodeDead{Node: node})
		c.processNodeDeath(node)
		rep.DeferredDeaths = append(rep.DeferredDeaths, node)
	}

	// Per-lineage journal resolution. Fencing first: a checkpoint
	// directive from an interval allocated by the dead coordinator,
	// still parked in a survivor's mailbox, would stall the job against
	// a global coordinator that no longer exists. Then resurrect
	// complete orphan captures (quiesce-window crashes seal stages the
	// journal never heard about), and run the normal recovery pass.
	for _, id := range c.JobIDs() {
		j, err := c.Job(id)
		if err != nil {
			continue
		}
		if !j.Done() {
			j.fenceStaleDirectives()
		}
		globalDir := snapshot.GlobalDirName(int(id))
		c.ckptMu.Lock()
		rebuilt, rerr := snapc.RebuildJournal(c.snapcEnv, globalDir, j, c.Alive)
		c.ckptMu.Unlock()
		if rerr != nil {
			c.ins.Emit("hnp", "reattach.rebuild-error", "job %d: %v", id, rerr)
		}
		rep.RebuiltEntries += rebuilt
		rr, rerr := c.RecoverDrains(globalDir)
		if rerr != nil {
			c.ins.Emit("hnp", "reattach.recover-error", "job %d: %v", id, rerr)
			continue
		}
		rep.Recovered.FastForwarded += rr.FastForwarded
		rep.Recovered.Redrained += rr.Redrained
		rep.Recovered.Discarded += rr.Discarded
		rep.Recovered.Superseded += rr.Superseded
	}

	// Reconcile the ledger: jobs that finished while nobody was
	// recording get their completion written now.
	if c.led != nil {
		st := c.led.State()
		for _, id := range c.JobIDs() {
			j, err := c.Job(id)
			if err != nil || !j.Done() {
				continue
			}
			if js, ok := st.Jobs[int(id)]; ok && !js.Done {
				c.ledgerAppend(ledger.TypeJobDone, int(id), nil)
			}
		}
	}
	c.ledgerAppend(ledger.TypeHNPReattached, 0, ledger.CrashEvent{})
	_ = c.led.Flush()
	c.ins.Gauge("ompi_hnp_headless").Set(0)
	c.ins.Counter("ompi_hnp_reattaches_total").Inc()
	c.ins.Emit("hnp", "hnp.reattach",
		"control plane rebuilt after %v headless: %d orteds, %d silent, %d deferred deaths, %d sessions aborted, %d journal entries rebuilt",
		rep.Down.Round(time.Millisecond), len(rep.Nodes), len(rep.DeclaredDead),
		len(rep.DeferredDeaths), rep.AbortedSessions, rep.RebuiltEntries)
	return rep, nil
}

// silentSince returns the live nodes not heard from after t, sorted.
func (c *Cluster) silentSince(t time.Time) []string {
	alive := c.AliveNodes()
	c.hbMu.Lock()
	defer c.hbMu.Unlock()
	var out []string
	for _, n := range alive {
		if c.lastBeat[n].Before(t) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// NodeHealth is one node's failure-detector view for the health op.
type NodeHealth struct {
	Node  string
	Alive bool
	// SinceBeat is the age of the node's last heard heartbeat; negative
	// when the HNP has never heard the node this incarnation.
	SinceBeat time.Duration
}

// ClusterHealth is the HNP's own health view: failure-detector state
// per node, the drain engine's store health, and the job ledger's
// durability lag. Served over the control channel as the "health" op.
type ClusterHealth struct {
	Headless bool
	Store    snapc.StoreHealth
	Nodes    []NodeHealth
	// LedgerSeq is the last applied ledger sequence number, LedgerLag
	// the records applied but not yet durable (a store outage grows
	// it), LedgerFlushErrors the lifetime count of failed flushes.
	// All zero when the ledger is disabled.
	LedgerSeq         int
	LedgerLag         int
	LedgerFlushErrors int
}

// Health reports the coordinator's live health view.
func (c *Cluster) Health() ClusterHealth {
	h := ClusterHealth{
		Headless: c.Headless(),
		Store:    c.Drainer().Health(),
	}
	if c.led != nil {
		h.LedgerSeq = c.led.Seq()
		h.LedgerLag = c.led.Lag()
		h.LedgerFlushErrors = c.led.FlushErrors()
	}
	now := time.Now()
	c.hbMu.Lock()
	beats := make(map[string]time.Time, len(c.lastBeat))
	for n, t := range c.lastBeat {
		beats[n] = t
	}
	c.hbMu.Unlock()
	for _, n := range c.Nodes() {
		nh := NodeHealth{Node: n, Alive: c.Alive(n), SinceBeat: -1}
		if t, ok := beats[n]; ok {
			nh.SinceBeat = now.Sub(t)
		}
		h.Nodes = append(h.Nodes, nh)
	}
	return h
}
