// HNP crash / reattach tests: the coordinator dies at the worst drain
// edges and is rebuilt over the still-running cluster. The invariant
// under test throughout: no COMMITTED interval is ever lost — at most
// the interval in flight at the crash is re-drained (when its sealed
// stages survive) or discarded.
package runtime

import (
	"errors"
	"fmt"
	"path"
	"testing"
	"time"

	"repro/internal/core/snapshot"
	"repro/internal/mca"
	"repro/internal/orte/ledger"
	"repro/internal/orte/snapc"
	"repro/internal/vfs"
)

// crashParams builds MCA params with fast heartbeats (so reattach
// handshakes converge quickly) plus the given fault plan.
func crashParams(plan string) *mca.Params {
	p := mca.NewParams()
	p.Set("orted_heartbeat_interval", "2ms")
	p.Set("orted_heartbeat_miss", "4")
	if plan != "" {
		p.Set("fault_plan", plan)
	}
	return p
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// stagesSealed reports whether every node hosting ranks of the job has
// sealed its local stage for the interval (LOCAL_COMMITTED marker).
func stagesSealed(c *Cluster, job *Job, interval int) bool {
	base := snapc.LocalBaseDir(job.JobID(), interval)
	for _, node := range job.Nodes() {
		fsys, err := c.NodeFS(node)
		if err != nil {
			return false
		}
		if !vfs.Exists(fsys, path.Join(base, snapshot.LocalCommittedFile)) {
			return false
		}
	}
	return true
}

// TestHNPCrashInQuiesceReattachRecoversInterval is the quiesce-window
// story end to end: interval 0 commits normally, the HNP dies inside
// interval 1's quiesce (after the directive fan-out, before any ack),
// the orteds seal their stages autonomously, and the reattached HNP
// rebuilds the orphan journal entry and re-drains it — both intervals
// end up committed on stable storage.
func TestHNPCrashInQuiesceReattachRecoversInterval(t *testing.T) {
	c := fourNodeCluster(t, crashParams("seed=1; hnp.crash:quiesce=after1,once"))
	factory, _ := newStencilFactory(0, 0)
	job, err := c.Launch(JobSpec{Name: "stencil", NP: 8, AppFactory: factory})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if _, err := c.CheckpointJob(job.JobID(), snapc.Options{}); err != nil {
		t.Fatalf("interval 0: %v", err)
	}

	_, err = c.CheckpointJob(job.JobID(), snapc.Options{})
	if err == nil {
		t.Fatal("interval 1 checkpoint succeeded through an injected HNP crash")
	}
	if !errors.Is(err, snapc.ErrHNPCrashed) {
		t.Fatalf("interval 1 error = %v, want ErrHNPCrashed", err)
	}
	if !c.Headless() {
		t.Fatal("cluster is not headless after the quiesce crash")
	}

	// The orteds never heard the crash: they checkpoint and seal their
	// interval-1 stages autonomously.
	waitUntil(t, 2*time.Second, "autonomous stage seal", func() bool {
		return stagesSealed(c, job, 1)
	})

	rep, err := c.Reattach()
	if err != nil {
		t.Fatalf("Reattach: %v", err)
	}
	if rep.RebuiltEntries != 1 {
		t.Errorf("RebuiltEntries = %d, want 1", rep.RebuiltEntries)
	}
	if rep.Recovered.Redrained != 1 {
		t.Errorf("Redrained = %d, want 1", rep.Recovered.Redrained)
	}
	if len(rep.DeclaredDead) != 0 {
		t.Errorf("DeclaredDead = %v, want none", rep.DeclaredDead)
	}
	if c.Headless() {
		t.Error("still headless after Reattach")
	}

	// Both intervals are committed on stable storage, and the rebuilt
	// control plane takes fresh checkpoints.
	ref := snapshot.GlobalRef{FS: c.Stable(), Dir: snapshot.GlobalDirName(int(job.JobID()))}
	ivs, err := snapshot.Intervals(ref)
	if err != nil || len(ivs) != 2 {
		t.Fatalf("intervals after reattach = %v (%v), want [0 1]", ivs, err)
	}
	res, err := c.CheckpointJob(job.JobID(), snapc.Options{Terminate: true})
	if err != nil {
		t.Fatalf("post-reattach checkpoint: %v", err)
	}
	if res.Interval != 2 {
		t.Errorf("post-reattach interval = %d, want 2", res.Interval)
	}
	if err := job.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

// TestHNPCrashMidDrainLosesAtMostInflight kills the HNP after interval
// 1's journal entry went DRAINING. Committed interval 0 must survive;
// interval 1 is re-drained from its sealed stages at reattach.
func TestHNPCrashMidDrainLosesAtMostInflight(t *testing.T) {
	c := fourNodeCluster(t, crashParams("seed=1; hnp.crash:mid-drain=after1,once"))
	factory, _ := newStencilFactory(0, 0)
	job, err := c.Launch(JobSpec{Name: "stencil", NP: 8, AppFactory: factory})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if _, err := c.CheckpointJob(job.JobID(), snapc.Options{}); err != nil {
		t.Fatalf("interval 0: %v", err)
	}
	p, err := c.CheckpointJobAsync(job.JobID(), snapc.Options{})
	if err != nil {
		t.Fatalf("interval 1 capture: %v", err)
	}
	if _, err := p.Wait(); err == nil {
		t.Fatal("interval 1 drained through an injected mid-drain HNP crash")
	}
	waitUntil(t, 2*time.Second, "headless after mid-drain crash", c.Headless)

	rep, err := c.Reattach()
	if err != nil {
		t.Fatalf("Reattach: %v", err)
	}
	if rep.Recovered.Redrained != 1 {
		t.Errorf("Redrained = %d, want 1 (report %+v)", rep.Recovered.Redrained, rep)
	}
	ref := snapshot.GlobalRef{FS: c.Stable(), Dir: snapshot.GlobalDirName(int(job.JobID()))}
	for _, iv := range []int{0, 1} {
		if _, err := snapshot.ReadGlobal(ref, iv); err != nil {
			t.Errorf("interval %d unreadable after reattach: %v", iv, err)
		}
	}
	if _, err := c.CheckpointJob(job.JobID(), snapc.Options{Terminate: true}); err != nil {
		t.Fatalf("post-reattach checkpoint: %v", err)
	}
	if err := job.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

// TestHeadlessGuardsAndDoubleCrash: while the HNP is down every
// control-plane operation refuses with ErrHNPDown, crashing twice is
// idempotent, and reattaching twice reports there is nothing to do.
func TestHeadlessGuardsAndDoubleCrash(t *testing.T) {
	c := fourNodeCluster(t, crashParams(""))
	factory, _ := newStencilFactory(0, 0)
	job, err := c.Launch(JobSpec{Name: "stencil", NP: 4, AppFactory: factory})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	res, err := c.CheckpointJob(job.JobID(), snapc.Options{})
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	if err := c.CrashHNP(fmt.Errorf("test crash")); err != nil {
		t.Fatalf("CrashHNP: %v", err)
	}
	if err := c.CrashHNP(fmt.Errorf("second crash")); err != nil {
		t.Fatalf("second CrashHNP: %v", err)
	}

	if _, err := c.Launch(JobSpec{Name: "stencil", NP: 2, AppFactory: factory}); !errors.Is(err, snapc.ErrHNPDown) {
		t.Errorf("headless Launch error = %v, want ErrHNPDown", err)
	}
	if _, err := c.CheckpointJobAsync(job.JobID(), snapc.Options{}); !errors.Is(err, snapc.ErrHNPDown) {
		t.Errorf("headless checkpoint error = %v, want ErrHNPDown", err)
	}
	if _, err := c.Restart(res.Ref, res.Interval, factory); !errors.Is(err, snapc.ErrHNPDown) {
		t.Errorf("headless Restart error = %v, want ErrHNPDown", err)
	}
	if err := c.MigrateRank(job.JobID(), 0, "n3"); !errors.Is(err, snapc.ErrHNPDown) {
		t.Errorf("headless MigrateRank error = %v, want ErrHNPDown", err)
	}

	if _, err := c.Reattach(); err != nil {
		t.Fatalf("Reattach: %v", err)
	}
	if _, err := c.Reattach(); err == nil {
		t.Error("second Reattach did not refuse")
	}
	if _, err := c.CheckpointJob(job.JobID(), snapc.Options{Terminate: true}); err != nil {
		t.Fatalf("post-reattach checkpoint: %v", err)
	}
	if err := job.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	// One crash, one reattach in the durable record — the second calls
	// of each were no-ops.
	st := c.Ledger().State()
	if st.Crashes != 1 || st.Reattaches != 1 {
		t.Errorf("ledger crashes/reattaches = %d/%d, want 1/1", st.Crashes, st.Reattaches)
	}
}

// TestNodeDeathWhileHeadlessIsDeferredToReattach: a node dies while
// nobody is coordinating. The death is parked, the job (with no ranks
// on the dead node) is untouched, and the reattach records and
// processes it.
func TestNodeDeathWhileHeadlessIsDeferredToReattach(t *testing.T) {
	c := fourNodeCluster(t, crashParams(""))
	factory, _ := newStencilFactory(0, 0)
	// NP 2 on a 4-node cluster: round-robin places ranks on n0 and n1
	// only, so n3's death must not abort the job.
	job, err := c.Launch(JobSpec{Name: "stencil", NP: 2, AppFactory: factory})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if err := c.CrashHNP(fmt.Errorf("test crash")); err != nil {
		t.Fatalf("CrashHNP: %v", err)
	}
	if err := c.KillNode("n3"); err != nil {
		t.Fatalf("KillNode while headless: %v", err)
	}
	if c.Alive("n3") {
		t.Error("n3 still alive after headless kill")
	}

	rep, err := c.Reattach()
	if err != nil {
		t.Fatalf("Reattach: %v", err)
	}
	if len(rep.DeferredDeaths) != 1 || rep.DeferredDeaths[0] != "n3" {
		t.Errorf("DeferredDeaths = %v, want [n3]", rep.DeferredDeaths)
	}
	if job.Done() {
		t.Fatal("job aborted by a death on a node it does not use")
	}
	if _, err := c.CheckpointJob(job.JobID(), snapc.Options{Terminate: true}); err != nil {
		t.Fatalf("post-reattach checkpoint: %v", err)
	}
	if err := job.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

// TestLedgerRecordsJobLifecycle replays the durable ledger cold — the
// path `ompi-run --reattach` takes after the whole process died — and
// checks the folded state matches what actually happened.
func TestLedgerRecordsJobLifecycle(t *testing.T) {
	c := fourNodeCluster(t, crashParams(""))
	factory, _ := newStencilFactory(0, 0)
	job, err := c.Launch(JobSpec{Name: "stencil", NP: 4, AppFactory: factory})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if _, err := c.CheckpointJob(job.JobID(), snapc.Options{}); err != nil {
		t.Fatalf("interval 0: %v", err)
	}
	if _, err := c.CheckpointJob(job.JobID(), snapc.Options{Terminate: true}); err != nil {
		t.Fatalf("interval 1: %v", err)
	}
	if err := job.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if err := c.Ledger().Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	st, dropped, err := ledger.Replay(c.Stable(), "")
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if dropped != 0 {
		t.Errorf("replay dropped %d records", dropped)
	}
	js, ok := st.Jobs[int(job.JobID())]
	if !ok {
		t.Fatalf("ledger has no job %d: %+v", job.JobID(), st)
	}
	if js.Name != "stencil" || js.NP != 4 || !js.Done {
		t.Errorf("job state = %+v", js)
	}
	if len(js.Placement) != 4 {
		t.Errorf("placement = %v, want 4 ranks", js.Placement)
	}
	if len(js.Committed) != 2 || js.Inflight != -1 {
		t.Errorf("committed = %v inflight = %d, want [0 1] and -1", js.Committed, js.Inflight)
	}
	if len(st.Live()) != 0 {
		t.Errorf("Live() = %v, want none", st.Live())
	}
	if st.Headless {
		t.Error("replayed state is headless; the HNP never crashed")
	}
}

// TestHealthReflectsHeadlessAndLedger: the Cluster.Health view flips
// with the coordinator's state.
func TestHealthReflectsHeadlessAndLedger(t *testing.T) {
	c := fourNodeCluster(t, crashParams(""))
	factory, _ := newStencilFactory(0, 0)
	job, err := c.Launch(JobSpec{Name: "stencil", NP: 4, AppFactory: factory})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if _, err := c.CheckpointJob(job.JobID(), snapc.Options{}); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	h := c.Health()
	if h.Headless || h.Store.Degraded {
		t.Errorf("healthy cluster reports %+v", h)
	}
	if h.LedgerSeq == 0 {
		t.Error("ledger seq is 0 after a launch and a checkpoint")
	}
	if len(h.Nodes) != 4 {
		t.Errorf("health lists %d nodes, want 4", len(h.Nodes))
	}
	// Heartbeats are flowing: every node has been heard recently.
	waitUntil(t, time.Second, "fresh heartbeats in health view", func() bool {
		for _, n := range c.Health().Nodes {
			if n.SinceBeat < 0 {
				return false
			}
		}
		return true
	})

	if err := c.CrashHNP(fmt.Errorf("test crash")); err != nil {
		t.Fatalf("CrashHNP: %v", err)
	}
	if !c.Health().Headless {
		t.Error("health does not report headless after crash")
	}
	if _, err := c.Reattach(); err != nil {
		t.Fatalf("Reattach: %v", err)
	}
	if c.Health().Headless {
		t.Error("health still headless after reattach")
	}
	if _, err := c.CheckpointJob(job.JobID(), snapc.Options{Terminate: true}); err != nil {
		t.Fatalf("terminate: %v", err)
	}
	_ = job.Wait()
}
