package runtime

import (
	"testing"

	"repro/internal/mca"
	"repro/internal/orte/plm"
	"repro/internal/orte/snapc"
	"repro/internal/trace"
)

// TestCheckpointRestartOverTCPTransport runs the full pipeline with the
// btl=tcp component: real loopback sockets carry every fragment —
// application traffic, rendezvous control, and the bookmark exchange —
// proving the C/R machinery is transport-agnostic (the paper's design
// supported TCP and InfiniBand through the same PML).
func TestCheckpointRestartOverTCPTransport(t *testing.T) {
	params := mca.NewParams()
	params.Set("btl", "tcp")
	c, err := New(Config{
		Nodes:  []plm.NodeSpec{{Name: "n0", Slots: 2}, {Name: "n1", Slots: 2}},
		Params: params,
		Ins:    trace.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	factory, _ := newStencilFactory(0, 0)
	job, err := c.Launch(JobSpec{Name: "stencil", NP: 4, AppFactory: factory})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.CheckpointJob(job.JobID(), snapc.Options{Terminate: true})
	if err != nil {
		t.Fatalf("checkpoint over tcp: %v", err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}

	factory2, apps2 := newStencilFactory(0, 6)
	job2, err := c.Restart(res.Ref, res.Interval, factory2)
	if err != nil {
		t.Fatalf("restart over tcp: %v", err)
	}
	if err := job2.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, a := range *apps2 {
		if a.state.Iter != a.startIter+6 {
			t.Errorf("app %d iter = %d, want %d", i, a.state.Iter, a.startIter+6)
		}
	}
}

// TestBadTransportRejected verifies MCA selection errors surface.
func TestBadTransportRejected(t *testing.T) {
	params := mca.NewParams()
	params.Set("btl", "infiniband")
	c, err := New(Config{
		Nodes:  []plm.NodeSpec{{Name: "n0", Slots: 4}},
		Params: params,
		Ins:    trace.New(),
	})
	if err != nil {
		t.Fatal(err) // cluster creation succeeds; selection happens at launch
	}
	defer c.Close()
	factory, _ := newStencilFactory(1, 0)
	if _, err := c.Launch(JobSpec{Name: "s", NP: 2, AppFactory: factory}); err == nil {
		t.Error("Launch with unknown BTL succeeded")
	}
}

// TestTreeCoordinatorEndToEnd runs the full launch → checkpoint →
// terminate → restart pipeline with the hierarchical (tree) SNAPC
// component selected by MCA parameter — the paper's alternative
// coordination technique swapped in with one flag.
func TestTreeCoordinatorEndToEnd(t *testing.T) {
	params := mca.NewParams()
	params.Set("snapc", "tree")
	c, err := New(Config{
		Nodes: []plm.NodeSpec{
			{Name: "n0", Slots: 2}, {Name: "n1", Slots: 2},
			{Name: "n2", Slots: 2}, {Name: "n3", Slots: 2},
		},
		Params: params,
		Ins:    trace.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	factory, _ := newStencilFactory(0, 0)
	job, err := c.Launch(JobSpec{Name: "stencil", NP: 8, AppFactory: factory})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.CheckpointJob(job.JobID(), snapc.Options{Terminate: true})
	if err != nil {
		t.Fatalf("tree checkpoint: %v", err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	if c.Log().Count("ckpt.tree-relay") == 0 {
		t.Error("tree coordinator left no relay events")
	}
	factory2, apps2 := newStencilFactory(0, 4)
	job2, err := c.Restart(res.Ref, res.Interval, factory2)
	if err != nil {
		t.Fatalf("restart from tree snapshot: %v", err)
	}
	if err := job2.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, a := range *apps2 {
		if a.state.Iter != a.startIter+4 {
			t.Errorf("app %d iter = %d", i, a.state.Iter)
		}
	}
}
