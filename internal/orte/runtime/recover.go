// Job-side plumbing for in-job rank recovery and live migration. The
// runtime owns the mechanics — freezing the job when the HNP declares a
// node dead, parking survivors, respawning lost ranks on replacement
// nodes, swapping fabrics — while the policy (source selection, retry,
// quorum, re-knit verification) lives in the orte/recovery coordinator,
// attached via the RecoveryHandler interface. Keeping the interface here
// lets the coordinator depend on runtime without an import cycle.
package runtime

import (
	"fmt"
	"path"
	"sort"
	"strconv"
	"time"

	"repro/internal/core/snapshot"
	"repro/internal/ompi"
	"repro/internal/ompi/btl"
	"repro/internal/orte/filem"
	"repro/internal/orte/ledger"
	"repro/internal/orte/names"
	"repro/internal/orte/snapc"
	"sync"
)

// RankState labels one rank slot's lifecycle for observability.
type RankState string

// Rank states surfaced through RankTable and the control plane.
const (
	RankRunning    RankState = "running"
	RankFailed     RankState = "failed"
	RankRecovering RankState = "recovering"
	RankMigrated   RankState = "migrated"
	RankDone       RankState = "done"
)

// RankInfo is the per-rank view ompi-ps renders: where the rank runs,
// what state it is in, the last checkpoint interval it participated in
// (-1 before the first), and where its current incarnation's state came
// from ("fresh", "restored:…" after a whole-job restart, "recovered:…"
// after in-job recovery, "migrated:…" after a planned move).
type RankInfo struct {
	Rank     int
	Node     string
	State    RankState
	Interval int
	Source   string
}

// RecoveryHandler is the policy half of in-job recovery. HandleFailure
// runs on its own goroutine after the runtime has frozen the job (lost
// epochs bumped, fabric closed, survivors parked); it must end the
// session via CompleteRecovery or AbortRecovery. HandleMigration runs a
// planned single-rank move and returns the session outcome.
type RecoveryHandler interface {
	HandleFailure(j *Job, node string, lost []int, detectedAt time.Time)
	HandleMigration(j *Job, rank int, target string) error
}

// SetRecoveryHandler attaches (or detaches, with nil) the recovery
// policy. Without a handler, node loss aborts the whole job — the
// pre-recovery behavior Supervise's whole-job restart path expects.
func (j *Job) SetRecoveryHandler(h RecoveryHandler) {
	j.mu.Lock()
	j.handler = h
	j.mu.Unlock()
}

// HasRecoveryHandler reports whether a recovery policy is attached.
func (j *Job) HasRecoveryHandler() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.handler != nil
}

// RecoverySession is one frozen-job recovery in flight: which ranks were
// lost, on which node, and the rendezvous channels parking the
// survivors. Created by the runtime at failure detection (or
// BeginMigration) and driven by the RecoveryHandler.
type RecoverySession struct {
	node     string // dead node; "" for a planned migration
	planned  bool
	detected time.Time

	mu     sync.Mutex
	lost   map[int]bool
	orders map[int]chan *ompi.RecoverOrder

	abortOnce sync.Once
	abortErr  error
	aborted   chan struct{}
}

func newRecoverySession(node string, planned bool, lost []int) *RecoverySession {
	s := &RecoverySession{
		node: node, planned: planned, detected: time.Now(),
		lost:    make(map[int]bool, len(lost)),
		orders:  make(map[int]chan *ompi.RecoverOrder),
		aborted: make(chan struct{}),
	}
	for _, r := range lost {
		s.lost[r] = true
	}
	return s
}

// Node returns the dead node ("" for a planned migration).
func (s *RecoverySession) Node() string { return s.node }

// Planned reports whether this session is a migration, not a failure.
func (s *RecoverySession) Planned() bool { return s.planned }

// DetectedAt is when the runtime froze the job.
func (s *RecoverySession) DetectedAt() time.Time { return s.detected }

// Lost returns the lost ranks in ascending order.
func (s *RecoverySession) Lost() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.lost))
	for r := range s.lost {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// Aborted is closed when the session has been aborted.
func (s *RecoverySession) Aborted() <-chan struct{} { return s.aborted }

// AbortErr returns the abort cause once Aborted is closed.
func (s *RecoverySession) AbortErr() error {
	select {
	case <-s.aborted:
		return s.abortErr
	default:
		return nil
	}
}

// Deliver hands a parked survivor its recovery order.
func (s *RecoverySession) Deliver(rank int, ord *ompi.RecoverOrder) {
	s.mu.Lock()
	ch := s.orderChLocked(rank)
	s.mu.Unlock()
	select {
	case ch <- ord:
	default: // slot already holds an order; the session is broken anyway
	}
}

func (s *RecoverySession) orderChLocked(rank int) chan *ompi.RecoverOrder {
	ch, ok := s.orders[rank]
	if !ok {
		ch = make(chan *ompi.RecoverOrder, 1)
		s.orders[rank] = ch
	}
	return ch
}

func (s *RecoverySession) abort(err error) {
	s.abortOnce.Do(func() {
		s.abortErr = err
		close(s.aborted)
	})
}

// failure builds the typed error a lost rank's process dies with.
func (s *RecoverySession) failure(cause error) error {
	return &ompi.RankFailedError{Ranks: s.Lost(), Node: s.node, Planned: s.planned, Cause: cause}
}

// Recovery returns the active recovery session, nil outside one.
func (j *Job) Recovery() *RecoverySession {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recov
}

// awaitRecovery is the Config.Recover hook: a rank whose step loop died
// of a communication failure lands here. Lost ranks get the typed
// RankFailedError and die (their slot was respawned); survivors park
// until the coordinator delivers a RecoverOrder, the session aborts, or
// the order deadline passes. Without a handler the cause is returned
// immediately — the legacy whole-job abort.
func (j *Job) awaitRecovery(r int, cause error) (*ompi.RecoverOrder, error) {
	detectWait := j.params.Duration("recovery_detect_wait", 2*time.Second)
	deadline := time.Now().Add(detectWait)
	var s *RecoverySession
	for {
		j.mu.Lock()
		s = j.recov
		h := j.handler
		j.mu.Unlock()
		if s != nil {
			break
		}
		// The transport symptom can precede the HNP's death declaration
		// (the fabric closes at freeze, but a TCP-backed fabric may fail
		// earlier); give detection a moment to catch up.
		if h == nil || time.Now().After(deadline) {
			return nil, cause
		}
		time.Sleep(500 * time.Microsecond)
	}
	s.mu.Lock()
	isLost := s.lost[r]
	var ch chan *ompi.RecoverOrder
	if !isLost {
		ch = s.orderChLocked(r)
	}
	s.mu.Unlock()
	if isLost {
		return nil, s.failure(cause)
	}
	timeout := j.params.Duration("recovery_order_timeout", 30*time.Second)
	select {
	case ord := <-ch:
		return ord, nil
	case <-s.aborted:
		return nil, fmt.Errorf("runtime: rank %d: recovery aborted: %w", r, s.abortErr)
	case <-time.After(timeout):
		return nil, fmt.Errorf("runtime: rank %d: no recovery order within %v: %w", r, timeout, cause)
	}
}

// onNodeDeath reacts to a node-down declaration for this job. Returns
// true when a recovery handler took ownership (a session was started, or
// an active one was aborted — either way the caller must not run the
// legacy whole-job abort).
func (j *Job) onNodeDeath(node string) bool {
	j.mu.Lock()
	h := j.handler
	if h == nil {
		j.mu.Unlock()
		return false
	}
	if j.recov != nil {
		// A second node died while a session is recovering the first
		// loss. The session's staging targets and survivor set are now
		// suspect: converge via the fallback ladder instead of trying
		// to patch a moving target.
		j.mu.Unlock()
		j.AbortRecovery(fmt.Errorf("runtime: node %q lost during recovery", node))
		return true
	}
	var lost []int
	for r := 0; r < j.spec.NP; r++ {
		if j.placement[r] == node {
			lost = append(lost, r)
		}
	}
	if len(lost) == 0 {
		j.mu.Unlock()
		return false
	}
	s := newRecoverySession(node, false, lost)
	j.recov = s
	for _, r := range lost {
		j.epochs[r]++ // the old incarnation's exit is now stale
		j.rankMeta[r].State = RankFailed
	}
	for r := 0; r < j.spec.NP; r++ {
		if !s.lost[r] && j.rankMeta[r].State == RankRunning {
			j.rankMeta[r].State = RankRecovering
		}
	}
	fab := j.fabric
	j.mu.Unlock()
	// Closing the fabric surfaces the failure to every survivor as a
	// communication error at its next operation — the detectable symptom
	// Config.Recover keys off.
	fab.Close()
	j.cluster.ins.Emit("runtime", "recovery.detect",
		"job %d lost node %q (ranks %v); starting in-job recovery", j.id, node, lost)
	j.cluster.ledgerAppend(ledger.TypeRecoveryBegin, int(j.id), ledger.RecoveryEvent{Node: node})
	go h.HandleFailure(j, node, lost, s.detected)
	return true
}

// BeginMigration freezes the job for a planned single-rank move: the
// same machinery as failure recovery, invoked without a failure. The
// migrating rank's slot is respawned by the session; survivors roll back
// to the just-captured frontier (a near no-op with intact local stages).
func (j *Job) BeginMigration(rank int) (*RecoverySession, error) {
	j.mu.Lock()
	if j.recov != nil {
		j.mu.Unlock()
		return nil, fmt.Errorf("runtime: job %d already has a recovery session", j.id)
	}
	if rank < 0 || rank >= j.spec.NP {
		j.mu.Unlock()
		return nil, fmt.Errorf("runtime: job %d has no rank %d", j.id, rank)
	}
	s := newRecoverySession("", true, []int{rank})
	j.recov = s
	j.epochs[rank]++
	j.rankMeta[rank].State = RankRecovering
	for r := 0; r < j.spec.NP; r++ {
		if r != rank && j.rankMeta[r].State == RankRunning {
			j.rankMeta[r].State = RankRecovering
		}
	}
	fab := j.fabric
	j.mu.Unlock()
	fab.Close()
	j.cluster.ins.Emit("runtime", "migration.begin", "job %d rank %d", j.id, rank)
	return s, nil
}

// RebuildFabric allocates a fresh job fabric from the same BTL component
// the job launched with. The coordinator attaches survivor ports itself
// and hands them out in recovery orders; respawned ranks attach in
// NewProc.
func (j *Job) RebuildFabric() (btl.JobFabric, error) {
	return j.btlComp.NewFabric(j.spec.NP)
}

// RespawnRank replaces a lost rank's slot: a fresh process on the
// replacement node, attached to the rebuilt fabric, restoring from the
// session's chosen source, reporting through gate before stepping. The
// slot's epoch was bumped at freeze, so the dead incarnation's exit
// cannot clobber this one's bookkeeping.
func (j *Job) RespawnRank(rank int, node string, fab btl.JobFabric, restore *ompi.RestoreSpec, gate func([]byte, error) error) error {
	proc, err := j.newRankProc(rank, node, fab, gate)
	if err != nil {
		return err
	}
	app := j.spec.AppFactory(rank)
	j.mu.Lock()
	epoch := j.epochs[rank]
	j.procs[rank] = proc
	j.apps[rank] = app
	j.errs[rank] = nil
	j.placement[rank] = node
	j.rankMeta[rank].Node = node
	j.mu.Unlock()
	j.wg.Add(1)
	go j.runRank(rank, epoch, proc, app, restore)
	j.cluster.ledgerAppend(ledger.TypePlacement, int(j.id), ledger.Placement{Rank: rank, Node: node})
	return nil
}

// CompleteRecovery installs the rebuilt fabric and closes the session:
// placement-derived node list recomputed, rank states and sources
// updated, interval stamped. Called by the coordinator after every rank
// verified, immediately before it releases the parked reports.
func (j *Job) CompleteRecovery(fab btl.JobFabric, interval int, sources map[int]string) {
	j.mu.Lock()
	s := j.recov
	j.recov = nil
	j.fabric = fab
	// Fence off every checkpoint interval allocated before this point:
	// a directive from one of them (delivered late by a starved local
	// coordinator, or parked in a survivor's mailbox during the session)
	// would force the released ranks to a step frontier whose global
	// coordinator is gone, stalling peers into the directive-wait
	// timeout and killing the rebuilt job. Intervals are never reused
	// and none allocated so far can still pass the checkpointable
	// precheck, so the fence cannot swallow a legitimate order.
	fence := j.nextInterval - 1
	for r := 0; r < j.spec.NP; r++ {
		if p := j.procs[r]; p != nil {
			p.FenceDirectives(fence)
		}
	}
	seen := make(map[string]bool)
	j.nodes = nil
	for r := 0; r < j.spec.NP; r++ {
		n := j.placement[r]
		if !seen[n] {
			seen[n] = true
			j.nodes = append(j.nodes, n)
		}
	}
	for r := 0; r < j.spec.NP; r++ {
		if src, ok := sources[r]; ok {
			j.rankMeta[r].Source = src
		}
		j.rankMeta[r].Interval = interval
		j.rankMeta[r].Node = j.placement[r]
		switch {
		case s != nil && s.lost[r] && s.planned:
			j.rankMeta[r].State = RankMigrated
		default:
			j.rankMeta[r].State = RankRunning
		}
	}
	j.mu.Unlock()
	j.cluster.ins.Emit("runtime", "recovery.complete",
		"job %d rebuilt at interval %d", j.id, interval)
	j.cluster.ledgerAppend(ledger.TypeRecoveryComplete, int(j.id), ledger.RecoveryEvent{})
}

// AbortRecovery ends the active session with an error: parked survivors
// fail, the job dies, and whoever supervises it falls back to whole-job
// restart. Safe to call without an active session.
func (j *Job) AbortRecovery(err error) {
	j.mu.Lock()
	s := j.recov
	j.recov = nil
	j.mu.Unlock()
	if s == nil {
		return
	}
	s.abort(err)
	j.cluster.ins.Emit("runtime", "recovery.abort", "job %d: %v", j.id, err)
	j.cluster.ledgerAppend(ledger.TypeRecoveryAbort, int(j.id), ledger.RecoveryEvent{Reason: err.Error()})
}

// RankTable returns a snapshot of the per-rank view.
func (j *Job) RankTable() []RankInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]RankInfo, len(j.rankMeta))
	copy(out, j.rankMeta)
	return out
}

// setRankSource records where a rank's current incarnation got its state.
func (j *Job) setRankSource(rank int, source string) {
	j.mu.Lock()
	j.rankMeta[rank].Source = source
	j.mu.Unlock()
}

// noteCheckpoint stamps a completed capture's interval on every rank. A
// global capture only succeeds when all ranks participate, so there is
// no per-rank condition — even a checkpoint-and-terminate capture (whose
// ranks may already have exited by the time the stamp lands) covered
// everyone.
func (j *Job) noteCheckpoint(interval int) {
	j.mu.Lock()
	for r := range j.rankMeta {
		j.rankMeta[r].Interval = interval
	}
	j.mu.Unlock()
}

// Placement returns a copy of the rank -> node map.
func (j *Job) Placement() map[int]string {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[int]string, len(j.placement))
	for r, n := range j.placement {
		out[r] = n
	}
	return out
}

// GlobalDir is the job's global snapshot directory on stable storage —
// the lineage the recovery coordinator resolves restore sources from.
func (j *Job) GlobalDir() string { return snapshot.GlobalDirName(int(j.id)) }

// MigrateRank moves one rank of a running job to another live node: a
// fresh KeepLocal checkpoint pins the frontier node-local (survivors
// roll back for free), then the job's recovery handler runs the same
// freeze/respawn/re-knit session a failure would, minus the failure.
func (c *Cluster) MigrateRank(id names.JobID, rank int, node string) error {
	if err := c.headlessErr(); err != nil {
		return err
	}
	j, err := c.Job(id)
	if err != nil {
		return err
	}
	if j.Done() {
		return fmt.Errorf("runtime: job %d already finished", id)
	}
	if rank < 0 || rank >= j.spec.NP {
		return fmt.Errorf("runtime: job %d has no rank %d", id, rank)
	}
	if !c.Alive(node) {
		return fmt.Errorf("runtime: migration target %q is not a live node", node)
	}
	j.mu.Lock()
	h := j.handler
	active := j.recov != nil
	cur := j.placement[rank]
	j.mu.Unlock()
	if h == nil {
		return fmt.Errorf("runtime: job %d has no recovery handler (enable an in-job recovery policy)", id)
	}
	if active {
		return fmt.Errorf("runtime: job %d has a recovery session in progress", id)
	}
	if cur == node {
		return nil // already there
	}
	if _, err := c.CheckpointJob(id, snapc.Options{KeepLocal: true}); err != nil {
		return fmt.Errorf("runtime: migrate rank %d: pre-move checkpoint: %w", rank, err)
	}
	return h.HandleMigration(j, rank, node)
}

// Filem exposes the selected FILEM component and its environment so the
// recovery coordinator stages restore sources over the same modeled
// links (and counters) every other transfer uses.
func (c *Cluster) Filem() (filem.Component, *filem.Env) { return c.filemComp, c.filemEnv }

// PruneLocalStages removes a job's node-local checkpoint stages older
// than keepFrom on every live node. Supervising with KeepLocal retention
// accumulates one sealed stage per interval; only the newest committed
// one is a useful in-job recovery source.
//
// Sub-stable intervals are exempt no matter their age: for an L1/L2
// hold (or an interval parked through a store outage) the sealed stage
// IS the checkpoint until a stable commit absorbs it, so a held or
// otherwise undrained interval is never pruned — the level-aware
// retention rule of DESIGN.md §5g.
func (c *Cluster) PruneLocalStages(id names.JobID, keepFrom int) {
	base := path.Dir(snapc.LocalBaseDir(id, 0)) // tmp/ckpt/job<id>
	pinned := c.Drainer().Held(snapshot.GlobalDirName(int(id)))
	ref := snapshot.GlobalRef{FS: c.stable, Dir: snapshot.GlobalDirName(int(id))}
	if und, err := snapshot.OpenJournal(ref).Undrained(); err == nil {
		for _, e := range und {
			pinned[e.Interval] = e.Level
		}
	}
	for _, node := range c.AliveNodes() {
		fs, err := c.nodeFS(node)
		if err != nil {
			continue
		}
		entries, err := fs.ReadDir(base)
		if err != nil {
			continue
		}
		for _, e := range entries {
			iv, err := strconv.Atoi(e.Name)
			if err != nil || iv >= keepFrom {
				continue
			}
			if _, held := pinned[iv]; held {
				continue
			}
			_ = fs.Remove(path.Join(base, e.Name))
		}
	}
}
