package runtime

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core/snapshot"
	"repro/internal/orte/cadence"
	"repro/internal/orte/names"
	"repro/internal/orte/sched"
	"repro/internal/orte/snapc"
)

// DefaultControlTimeout bounds control-channel I/O: how long the server
// waits for a request on an accepted connection, and how long the
// client tools wait to connect and to read a reply. A connect-and-hang
// peer (or a wedged mpirun) fails the operation instead of blocking a
// tool forever. The server side is tunable via the "control_timeout"
// MCA parameter.
const DefaultControlTimeout = 30 * time.Second

// The control plane reproduces the paper's asynchronous command-line
// tool path (§4, Fig. 1-A): `ompi-checkpoint PID_MPIRUN` reaches the
// mpirun process from outside, requests a checkpoint of a running job,
// and receives the global snapshot reference — with the option to
// checkpoint-and-terminate for system maintenance.
//
// ompi-run serves a loopback TCP socket and registers its address in a
// per-user session directory keyed by its OS pid, so the tools address
// the job exactly as the paper's tools do.

// ControlVersion is the control protocol version spoken by this build.
// Version 1 frames every exchange in a controlEnvelope; unversioned
// (pre-envelope) requests are still accepted and answered in kind, so
// old tools keep working against a new mpirun and vice versa.
const ControlVersion = 1

// controlEnvelope is the versioned request frame: the op travels in the
// envelope, everything op-specific in Args (a ControlRequest).
type controlEnvelope struct {
	V    int             `json:"v"`
	Op   string          `json:"op"`
	Args json.RawMessage `json:"args,omitempty"`
}

// controlReply is the versioned response frame mirroring the envelope:
// outcome in the frame, op-specific payload (a ControlResponse) in Body.
type controlReply struct {
	V    int             `json:"v"`
	OK   bool            `json:"ok"`
	Err  string          `json:"err,omitempty"`
	Body json.RawMessage `json:"body,omitempty"`
}

// ControlRequest is one tool command. Op is "checkpoint", "ps", "jobs",
// "ranks", "migrate", "metrics", "health", "sched" or "ping".
type ControlRequest struct {
	Op        string `json:"op"`
	Job       int    `json:"job,omitempty"` // 0 = the only/first job
	Terminate bool   `json:"terminate,omitempty"`
	// Async runs only the capture phase before replying; the drain
	// happens in the background queue. With Wait also set, the reply
	// waits for the background drain's outcome (still exercising the
	// async engine, unlike the plain synchronous op).
	Async bool `json:"async,omitempty"`
	Wait  bool `json:"wait,omitempty"`
	// Rank and Node parameterize the "migrate" op: move Rank of Job to
	// live node Node through an in-job recovery session.
	Rank int    `json:"rank,omitempty"`
	Node string `json:"node,omitempty"`
	// Weight parameterizes the "sched" op: > 0 sets Job's drain QoS
	// weight before the scheduler snapshot is taken.
	Weight int `json:"weight,omitempty"`
}

// ControlJobInfo describes one job in a "ps" or "jobs" response. The
// scheduler columns (Weight, QueuedDrains) are populated by the "jobs"
// op only.
type ControlJobInfo struct {
	Job   int      `json:"job"`
	App   string   `json:"app"`
	NP    int      `json:"np"`
	Nodes []string `json:"nodes"`
	Done  bool     `json:"done"`
	Ckpts int      `json:"checkpoints"`
	// Weight is the job's drain QoS weight as last seen by the
	// scheduler (0 until the lineage first enqueues a drain).
	Weight int `json:"weight,omitempty"`
	// QueuedDrains counts the job's intervals waiting in the drain
	// scheduler.
	QueuedDrains int `json:"queued_drains,omitempty"`
}

// ControlSchedFlow is one checkpoint lineage's row in a "sched"
// response.
type ControlSchedFlow struct {
	Flow       string `json:"flow"` // global snapshot directory = lineage key
	Weight     int    `json:"weight"`
	Queued     int    `json:"queued"`
	Busy       bool   `json:"busy"`
	ServedCost int64  `json:"served_cost"`
	QueuedCost int64  `json:"queued_cost"`
}

// ControlSched is the "sched" op's payload: the drain scheduler's
// worker pool size and per-lineage SFQ state.
type ControlSched struct {
	Workers int                `json:"workers"`
	Flows   []ControlSchedFlow `json:"flows,omitempty"`
}

// ControlRankInfo is one rank's row in a "ranks" response: where it
// runs, its lifecycle state, the last checkpoint interval it took part
// in (-1 before the first), and where its current incarnation's state
// came from.
type ControlRankInfo struct {
	Rank     int    `json:"rank"`
	Node     string `json:"node"`
	State    string `json:"state"`
	Interval int    `json:"interval"`
	Source   string `json:"source"`
}

// ControlResponse is the reply to one ControlRequest.
type ControlResponse struct {
	OK        bool   `json:"ok"`
	Err       string `json:"err,omitempty"`
	GlobalRef string `json:"global_ref,omitempty"`
	Interval  int    `json:"interval,omitempty"`
	// State reports the interval's drain-lifecycle position at reply
	// time: "committed" for completed checkpoints, "queued" for an
	// async request that returned at capture end.
	State string            `json:"state,omitempty"`
	Jobs  []ControlJobInfo  `json:"jobs,omitempty"`
	Ranks []ControlRankInfo `json:"ranks,omitempty"`
	// Metrics is the Prometheus-text rendering of the cluster's metrics
	// registry (the "metrics" op): the HNP's /metrics endpoint, served
	// over the control channel instead of HTTP.
	Metrics string `json:"metrics,omitempty"`
	// Health is the "health" op's payload.
	Health *ControlHealth `json:"health,omitempty"`
	// Sched is the "sched" op's payload.
	Sched *ControlSched `json:"sched,omitempty"`
	// Tuner is the "tuner" op's payload: the job's cadence-tuner plan.
	Tuner *ControlTuner `json:"tuner,omitempty"`
}

// ControlTunerLevel is one checkpoint level's row in a "tuner"
// response. Durations are nanoseconds (time.Duration wire form).
type ControlTunerLevel struct {
	Level      int    `json:"level"`
	Label      string `json:"label"`
	IntervalNS int64  `json:"interval_ns"`
	CostNS     int64  `json:"cost_ns"`
	MTBFNS     int64  `json:"mtbf_ns"`
	Failures   int    `json:"failures"`
	Retunes    int    `json:"retunes"`
	Suppressed int    `json:"suppressed"`
}

// ControlTuner is the wire form of a supervised job's Young/Daly
// cadence-tuner state (ompi-ps --tuner).
type ControlTuner struct {
	Auto   bool                `json:"auto"`
	Levels []ControlTunerLevel `json:"levels,omitempty"`
}

// ControlNodeHealth is one node's failure-detector row in a "health"
// response. LastBeatMs is the age of the last heard heartbeat in
// milliseconds; -1 means never heard this HNP incarnation.
type ControlNodeHealth struct {
	Node       string `json:"node"`
	Alive      bool   `json:"alive"`
	LastBeatMs int64  `json:"last_beat_ms"`
}

// ControlHealth is the wire form of the HNP's health view: headless
// state, stable-store degradation, drain backlog, ledger durability
// lag, and per-node failure-detector freshness.
type ControlHealth struct {
	Headless          bool                `json:"headless"`
	StoreDegraded     bool                `json:"store_degraded"`
	OutageScore       int                 `json:"outage_score"`
	ParkedIntervals   int                 `json:"parked_intervals"`
	JournalBacklog    int                 `json:"journal_backlog"`
	DrainQueueDepth   int                 `json:"drain_queue_depth"`
	LedgerSeq         int                 `json:"ledger_seq"`
	LedgerLag         int                 `json:"ledger_lag"`
	LedgerFlushErrors int                 `json:"ledger_flush_errors"`
	Nodes             []ControlNodeHealth `json:"nodes,omitempty"`
}

// ControlServer accepts tool connections for a cluster.
type ControlServer struct {
	cluster *Cluster
	ln      net.Listener
	wg      sync.WaitGroup
	session string        // session file path, removed on Close
	timeout time.Duration // per-connection request-read / reply-write bound
}

// SessionDir is where running ompi-run instances register their control
// addresses, keyed by OS pid.
func SessionDir() string {
	return filepath.Join(os.TempDir(), "ompi-go-sessions")
}

// SessionFile returns the session file path for an mpirun OS pid.
func SessionFile(pid int) string {
	return filepath.Join(SessionDir(), strconv.Itoa(pid)+".addr")
}

// ServeControl starts the control server on a loopback address
// ("127.0.0.1:0" picks a free port) and registers the session file for
// this process's pid. Pass register=false to skip registration (tests).
func (c *Cluster) ServeControl(addr string, register bool) (*ControlServer, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("runtime: control listen: %w", err)
	}
	s := &ControlServer{
		cluster: c,
		ln:      ln,
		timeout: c.params.Duration("control_timeout", DefaultControlTimeout),
	}
	if register {
		if err := os.MkdirAll(SessionDir(), 0o755); err != nil {
			ln.Close()
			return nil, fmt.Errorf("runtime: session dir: %w", err)
		}
		s.session = SessionFile(os.Getpid())
		if err := os.WriteFile(s.session, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			return nil, fmt.Errorf("runtime: session file: %w", err)
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	c.ins.Emit("hnp", "control.up", "%s", ln.Addr())
	return s, nil
}

// Addr returns the bound control address.
func (s *ControlServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and removes the session file.
func (s *ControlServer) Close() {
	s.ln.Close()
	if s.session != "" {
		os.Remove(s.session)
	}
	s.wg.Wait()
}

func (s *ControlServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles one tool connection: one JSON request, one reply.
// The request read is deadline-bounded so a connect-and-hang peer can't
// pin an accept slot forever; the reply write is bounded the same way.
// The handler itself (a synchronous checkpoint, say) is not bounded —
// only the wire I/O is.
//
// Both wire dialects are served: a versioned controlEnvelope gets a
// controlReply, a bare (pre-envelope) ControlRequest gets a bare
// ControlResponse. The dialect is sniffed off the "v" field so old
// tools and new mpiruns interoperate in either direction.
func (s *ControlServer) serveConn(conn net.Conn) {
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	var raw json.RawMessage
	_ = conn.SetReadDeadline(time.Now().Add(s.timeout))
	if err := dec.Decode(&raw); err != nil {
		_ = conn.SetWriteDeadline(time.Now().Add(s.timeout))
		_ = enc.Encode(ControlResponse{Err: fmt.Sprintf("bad request: %v", err)})
		return
	}
	_ = conn.SetReadDeadline(time.Time{})

	var env controlEnvelope
	versioned := json.Unmarshal(raw, &env) == nil && env.V > 0
	var req ControlRequest
	var decodeErr error
	if versioned {
		if env.V > ControlVersion {
			decodeErr = fmt.Errorf("control version %d not supported (max %d)", env.V, ControlVersion)
		} else if len(env.Args) > 0 {
			decodeErr = json.Unmarshal(env.Args, &req)
		}
		req.Op = env.Op
	} else {
		decodeErr = json.Unmarshal(raw, &req)
	}

	var resp ControlResponse
	if decodeErr != nil {
		resp = ControlResponse{Err: fmt.Sprintf("bad request: %v", decodeErr)}
	} else {
		resp = s.handle(req)
	}
	_ = conn.SetWriteDeadline(time.Now().Add(s.timeout))
	if !versioned {
		_ = enc.Encode(resp)
		return
	}
	body, err := json.Marshal(resp)
	if err != nil {
		body = nil
	}
	_ = enc.Encode(controlReply{V: ControlVersion, OK: resp.OK, Err: resp.Err, Body: body})
}

func (s *ControlServer) handle(req ControlRequest) ControlResponse {
	switch req.Op {
	case "ping":
		return ControlResponse{OK: true}
	case "ps":
		var out []ControlJobInfo
		for _, id := range s.cluster.JobIDs() {
			j, err := s.cluster.Job(id)
			if err != nil {
				continue
			}
			j.mu.Lock()
			interval := j.nextInterval
			j.mu.Unlock()
			out = append(out, ControlJobInfo{
				Job: int(id), App: j.spec.Name, NP: j.spec.NP,
				Nodes: j.Nodes(), Done: j.Done(), Ckpts: interval,
			})
		}
		return ControlResponse{OK: true, Jobs: out}
	case "jobs":
		// The job-scoped view: "ps" columns joined with the drain
		// scheduler's per-lineage state. --job filters to one job.
		flows := make(map[string]sched.FlowState)
		for _, f := range s.cluster.SchedFlows() {
			flows[f.Key] = f
		}
		var out []ControlJobInfo
		for _, id := range s.cluster.JobIDs() {
			if req.Job != 0 && int(id) != req.Job {
				continue
			}
			j, err := s.cluster.Job(id)
			if err != nil {
				continue
			}
			j.mu.Lock()
			interval := j.nextInterval
			j.mu.Unlock()
			info := ControlJobInfo{
				Job: int(id), App: j.spec.Name, NP: j.spec.NP,
				Nodes: j.Nodes(), Done: j.Done(), Ckpts: interval,
			}
			if f, ok := flows[snapshot.GlobalDirName(int(id))]; ok {
				info.Weight = f.Weight
				info.QueuedDrains = f.Queued
			}
			out = append(out, info)
		}
		if req.Job != 0 && len(out) == 0 {
			return ControlResponse{Err: fmt.Sprintf("no job %d", req.Job)}
		}
		return ControlResponse{OK: true, Jobs: out}
	case "sched":
		if req.Weight > 0 {
			id, err := s.resolveJobID(req.Job)
			if err != nil {
				return ControlResponse{Err: err.Error()}
			}
			if _, err := s.cluster.Job(id); err != nil {
				return ControlResponse{Err: err.Error()}
			}
			s.cluster.SetJobDrainWeight(id, req.Weight)
		}
		out := &ControlSched{Workers: s.cluster.Drainer().Workers()}
		for _, f := range s.cluster.SchedFlows() {
			out.Flows = append(out.Flows, ControlSchedFlow{
				Flow: f.Key, Weight: f.Weight, Queued: f.Queued, Busy: f.Busy,
				ServedCost: f.ServedCost, QueuedCost: f.QueuedCost,
			})
		}
		return ControlResponse{OK: true, Sched: out}
	case "ranks":
		id, err := s.resolveJobID(req.Job)
		if err != nil {
			return ControlResponse{Err: err.Error()}
		}
		j, err := s.cluster.Job(id)
		if err != nil {
			return ControlResponse{Err: err.Error()}
		}
		var rows []ControlRankInfo
		for _, ri := range j.RankTable() {
			rows = append(rows, ControlRankInfo{
				Rank: ri.Rank, Node: ri.Node, State: string(ri.State),
				Interval: ri.Interval, Source: ri.Source,
			})
		}
		return ControlResponse{OK: true, Ranks: rows}
	case "migrate":
		id, err := s.resolveJobID(req.Job)
		if err != nil {
			return ControlResponse{Err: err.Error()}
		}
		if req.Node == "" {
			return ControlResponse{Err: "migrate needs a target node"}
		}
		if err := s.cluster.MigrateRank(id, req.Rank, req.Node); err != nil {
			return ControlResponse{Err: err.Error()}
		}
		return ControlResponse{OK: true}
	case "metrics":
		return ControlResponse{OK: true, Metrics: s.cluster.ins.RenderMetrics()}
	case "health":
		h := s.cluster.Health()
		out := &ControlHealth{
			Headless:          h.Headless,
			StoreDegraded:     h.Store.Degraded,
			OutageScore:       h.Store.OutageScore,
			ParkedIntervals:   h.Store.Parked,
			JournalBacklog:    h.Store.JournalBacklog,
			DrainQueueDepth:   h.Store.QueueDepth,
			LedgerSeq:         h.LedgerSeq,
			LedgerLag:         h.LedgerLag,
			LedgerFlushErrors: h.LedgerFlushErrors,
		}
		for _, n := range h.Nodes {
			ms := int64(-1)
			if n.SinceBeat >= 0 {
				ms = n.SinceBeat.Milliseconds()
			}
			out.Nodes = append(out.Nodes, ControlNodeHealth{
				Node: n.Node, Alive: n.Alive, LastBeatMs: ms,
			})
		}
		return ControlResponse{OK: true, Health: out}
	case "tuner":
		id, err := s.resolveJobID(req.Job)
		if err != nil {
			return ControlResponse{Err: err.Error()}
		}
		st, ok := s.cluster.TunerState(id)
		if !ok {
			return ControlResponse{Err: fmt.Sprintf("job %d publishes no cadence tuner (supervise with --levels)", id)}
		}
		out := &ControlTuner{Auto: st.Auto}
		for _, lp := range st.Levels {
			out.Levels = append(out.Levels, ControlTunerLevel{
				Level:      lp.Level,
				Label:      cadence.LevelName(lp.Level),
				IntervalNS: int64(lp.Interval),
				CostNS:     int64(lp.Cost),
				MTBFNS:     int64(lp.MTBF),
				Failures:   lp.Failures,
				Retunes:    lp.Retunes,
				Suppressed: lp.Suppressed,
			})
		}
		return ControlResponse{OK: true, Tuner: out}
	case "checkpoint":
		id, err := s.resolveJobID(req.Job)
		if err != nil {
			return ControlResponse{Err: err.Error()}
		}
		if req.Async {
			p, err := s.cluster.CheckpointJobAsync(id, snapc.Options{Terminate: req.Terminate})
			if err != nil {
				return ControlResponse{Err: err.Error()}
			}
			if !req.Wait {
				// Capture done, drain queued: the tool returns while the
				// gather/commit proceeds in the background.
				return ControlResponse{OK: true, Interval: p.Interval, State: "queued"}
			}
			res, err := p.Wait()
			if err != nil {
				return ControlResponse{Err: err.Error(), Interval: p.Interval}
			}
			return ControlResponse{
				OK:        true,
				GlobalRef: res.Ref.Dir,
				Interval:  res.Interval,
				State:     "committed",
			}
		}
		res, err := s.cluster.CheckpointJob(id, snapc.Options{Terminate: req.Terminate})
		if err != nil {
			return ControlResponse{Err: err.Error()}
		}
		return ControlResponse{
			OK:        true,
			GlobalRef: res.Ref.Dir,
			Interval:  res.Interval,
			State:     "committed",
		}
	default:
		return ControlResponse{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// resolveJobID maps the tool's job argument (0 = "the job") to an id.
func (s *ControlServer) resolveJobID(arg int) (names.JobID, error) {
	if arg != 0 {
		return names.JobID(arg), nil
	}
	ids := s.cluster.JobIDs()
	switch len(ids) {
	case 0:
		return 0, fmt.Errorf("no jobs running")
	case 1:
		return ids[0], nil
	default:
		return 0, fmt.Errorf("%d jobs running; specify one with --job", len(ids))
	}
}

// ControlDial sends one request to a control address and returns the
// response; the client half used by the tools. I/O is bounded by
// DefaultControlTimeout — use ControlDialTimeout for long-running ops
// (a synchronous checkpoint of a large job can legitimately exceed it).
func ControlDial(addr string, req ControlRequest) (ControlResponse, error) {
	return ControlDialTimeout(addr, req, DefaultControlTimeout)
}

// ControlDialTimeout is ControlDial with an explicit bound covering the
// connect, the request write, and the response read. A dead or wedged
// mpirun fails the call instead of hanging the tool. timeout <= 0 means
// unbounded (connect still uses DefaultControlTimeout).
//
// The request goes out framed in the versioned envelope; a reply
// without a version is accepted as the pre-envelope flat form, so new
// tools still talk to an old mpirun.
func ControlDialTimeout(addr string, req ControlRequest, timeout time.Duration) (ControlResponse, error) {
	connectTO := timeout
	if connectTO <= 0 {
		connectTO = DefaultControlTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, connectTO)
	if err != nil {
		return ControlResponse{}, fmt.Errorf("runtime: dial mpirun control %s: %w", addr, err)
	}
	defer conn.Close()
	if timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(timeout))
	}
	args, err := json.Marshal(req)
	if err != nil {
		return ControlResponse{}, fmt.Errorf("runtime: encode control request: %w", err)
	}
	env := controlEnvelope{V: ControlVersion, Op: req.Op, Args: args}
	if err := json.NewEncoder(conn).Encode(env); err != nil {
		return ControlResponse{}, fmt.Errorf("runtime: send control request: %w", err)
	}
	var raw json.RawMessage
	if err := json.NewDecoder(conn).Decode(&raw); err != nil {
		return ControlResponse{}, fmt.Errorf("runtime: read control response: %w", err)
	}
	var reply controlReply
	if json.Unmarshal(raw, &reply) == nil && reply.V > 0 {
		var resp ControlResponse
		if len(reply.Body) > 0 {
			if err := json.Unmarshal(reply.Body, &resp); err != nil {
				return ControlResponse{}, fmt.Errorf("runtime: decode control reply body: %w", err)
			}
		}
		resp.OK, resp.Err = reply.OK, reply.Err
		return resp, nil
	}
	var resp ControlResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return ControlResponse{}, fmt.Errorf("runtime: decode control response: %w", err)
	}
	return resp, nil
}

// ResolveSession reads the control address registered by the mpirun
// with the given OS pid.
func ResolveSession(pid int) (string, error) {
	data, err := os.ReadFile(SessionFile(pid))
	if err != nil {
		return "", fmt.Errorf("runtime: no mpirun session for pid %d: %w", pid, err)
	}
	return string(data), nil
}

// ScanSessions lists every registered mpirun session: pid → control
// address. Stale files from crashed mpiruns are included — callers
// probe each address (a short-timeout ping) to tell live from dead.
// A missing session directory is an empty map, not an error.
func ScanSessions() (map[int]string, error) {
	entries, err := os.ReadDir(SessionDir())
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return map[int]string{}, nil
		}
		return nil, fmt.Errorf("runtime: scan sessions: %w", err)
	}
	out := make(map[int]string, len(entries))
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".addr") {
			continue
		}
		pid, err := strconv.Atoi(strings.TrimSuffix(name, ".addr"))
		if err != nil {
			continue
		}
		data, err := os.ReadFile(filepath.Join(SessionDir(), name))
		if err != nil {
			continue
		}
		out[pid] = string(data)
	}
	return out, nil
}
