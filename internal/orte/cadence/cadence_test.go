package cadence

import (
	"math"
	"testing"
	"time"
)

// within asserts got is within tol of want (sqrt goes through float64).
func within(t *testing.T, got, want, tol time.Duration) {
	t.Helper()
	if d := got - want; d < -tol || d > tol {
		t.Fatalf("got %v, want %v (±%v)", got, want, tol)
	}
}

func TestOptimalGolden(t *testing.T) {
	cases := []struct {
		name       string
		cost, mtbf time.Duration
		want       time.Duration // hand-computed sqrt(2·δ·MTBF)
	}{
		{"textbook", 2 * time.Second, 100 * time.Second, 20 * time.Second},
		{"sqrt1000s", 500 * time.Millisecond, 1000 * time.Second, 31622776601 * time.Nanosecond},
		{"millis", time.Millisecond, time.Second, 44721359 * time.Nanosecond},
		{"cheap-level", 100 * time.Microsecond, 10 * time.Second, 44721359 * time.Nanosecond},
		// 2·δ > MTBF: the first-order optimum sqrt(100 s²)=10s exceeds
		// the 5s MTBF, so the interval degenerates to the MTBF.
		{"cost-exceeds-mtbf", 10 * time.Second, 5 * time.Second, 5 * time.Second},
		{"zero-cost", 0, time.Minute, 0},
		{"zero-mtbf", time.Second, 0, 0},
		{"negative", -time.Second, -time.Minute, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			within(t, Optimal(tc.cost, tc.mtbf), tc.want, time.Microsecond)
		})
	}
}

func TestMTBF(t *testing.T) {
	cases := []struct {
		name     string
		failures int
		elapsed  time.Duration
		want     time.Duration
	}{
		{"four-over-minute", 4, time.Minute, 15 * time.Second},
		{"one", 1, 10 * time.Second, 10 * time.Second},
		{"zero-failures", 0, time.Hour, 0},
		{"zero-elapsed", 3, 0, 0},
		{"negative-failures", -1, time.Second, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := MTBF(tc.failures, tc.elapsed); got != tc.want {
				t.Fatalf("MTBF(%d, %v) = %v, want %v", tc.failures, tc.elapsed, got, tc.want)
			}
		})
	}
}

func TestPlanDegenerateInputs(t *testing.T) {
	cfg := Config{Min: 2 * time.Millisecond, Max: 100 * time.Millisecond}
	t.Run("long-clean-window-relaxes-to-ceiling", func(t *testing.T) {
		tn := New(cfg)
		tn.ObserveCost(L3, 5*time.Millisecond)
		// Laplace prior over a minute: sqrt(2·5ms·60s) ≈ 775ms > Max.
		iv, changed := tn.Plan(L3, 0, time.Minute)
		if iv != 100*time.Millisecond || !changed {
			t.Fatalf("zero failures: got (%v, %v), want ceiling (100ms, true)", iv, changed)
		}
	})
	t.Run("short-clean-window-plans-prior", func(t *testing.T) {
		tn := New(cfg)
		tn.ObserveCost(L3, 5*time.Millisecond)
		// No failure observed is not "infinitely reliable": the Laplace
		// prior assumes one failure at the horizon, sqrt(2·5ms·100ms) ≈
		// 31.6ms — a cold start is protected, not parked at the ceiling.
		iv, _ := tn.Plan(L3, 0, 100*time.Millisecond)
		if iv < 31*time.Millisecond || iv > 32*time.Millisecond {
			t.Fatalf("prior plan = %v, want ~31.6ms", iv)
		}
		if lp := tn.State().Levels[L3-1]; lp.MTBF != 100*time.Millisecond || lp.Failures != 0 {
			t.Fatalf("prior state = %+v, want MTBF=window, failures=0", lp)
		}
	})
	t.Run("prior-skips-thrash-cap", func(t *testing.T) {
		tn := New(cfg)
		tn.ObserveCost(L3, 50*time.Millisecond)
		// A measured MTBF of 20ms with δ=50ms would degenerate to the
		// MTBF; the prior is not a measured rate, so the sqrt form
		// stands: sqrt(2·50ms·20ms) ≈ 44.7ms.
		iv, _ := tn.Plan(L3, 0, 20*time.Millisecond)
		if iv < 44*time.Millisecond || iv > 45*time.Millisecond {
			t.Fatalf("prior plan = %v, want ~44.7ms (uncapped)", iv)
		}
	})
	t.Run("no-window-plans-ceiling", func(t *testing.T) {
		tn := New(cfg)
		tn.ObserveCost(L3, 5*time.Millisecond)
		iv, _ := tn.Plan(L3, 0, 0)
		if iv != 100*time.Millisecond {
			t.Fatalf("empty window: got %v, want ceiling", iv)
		}
	})
	t.Run("free-cost-plans-floor", func(t *testing.T) {
		tn := New(cfg)
		// Failures observed but no cost sample yet: δ unknown ≈ free.
		iv, _ := tn.Plan(L1, 10, time.Second)
		if iv != 2*time.Millisecond {
			t.Fatalf("free cost: got %v, want floor 2ms", iv)
		}
	})
	t.Run("cost-exceeds-mtbf-clamps", func(t *testing.T) {
		tn := New(cfg)
		tn.ObserveCost(L3, time.Second)
		// 100 failures over 1s: MTBF 10ms, δ=1s. Raw optimum sqrt(2·1s·10ms)
		// ≈ 141ms > MTBF → degenerates to 10ms, inside [2ms, 100ms].
		iv, _ := tn.Plan(L3, 100, time.Second)
		if iv != 10*time.Millisecond {
			t.Fatalf("thrash regime: got %v, want MTBF 10ms", iv)
		}
	})
	t.Run("below-floor-clamps", func(t *testing.T) {
		tn := New(cfg)
		tn.ObserveCost(L1, time.Microsecond)
		// sqrt(2·1µs·100µs) ≈ 14µs < Min.
		iv, _ := tn.Plan(L1, 10000, time.Second)
		if iv != 2*time.Millisecond {
			t.Fatalf("got %v, want floor 2ms", iv)
		}
	})
	t.Run("invalid-level", func(t *testing.T) {
		tn := New(cfg)
		if iv, changed := tn.Plan(0, 1, time.Second); iv != 0 || changed {
			t.Fatalf("level 0: got (%v, %v)", iv, changed)
		}
		if iv, changed := tn.Plan(NumLevels+1, 1, time.Second); iv != 0 || changed {
			t.Fatalf("level %d: got (%v, %v)", NumLevels+1, iv, changed)
		}
	})
}

func TestPlanHysteresis(t *testing.T) {
	cfg := Config{Min: time.Millisecond, Max: time.Minute, Hysteresis: 0.25, Alpha: 1}
	tn := New(cfg)
	tn.ObserveCost(L2, 2*time.Second)
	// First plan adopts unconditionally: sqrt(2·2s·100s) = 20s.
	iv, changed := tn.Plan(L2, 6, 10*time.Minute)
	if !changed || iv != 20*time.Second {
		t.Fatalf("first plan: got (%v, %v), want (20s, true)", iv, changed)
	}
	// A nudged MTBF (120s → target ~21.9s, +9.5%) sits inside the 25%
	// band: suppressed, interval unchanged.
	iv, changed = tn.Plan(L2, 5, 10*time.Minute)
	if changed || iv != 20*time.Second {
		t.Fatalf("inside band: got (%v, %v), want (20s, false)", iv, changed)
	}
	// A doubled failure rate (MTBF 50s → target ~14.1s, −29%) breaks the
	// band: adopted.
	iv, changed = tn.Plan(L2, 12, 10*time.Minute)
	if !changed {
		t.Fatalf("outside band: interval %v not adopted", iv)
	}
	within(t, iv, 14142135623*time.Nanosecond, time.Millisecond)
	st := tn.State()
	lp := st.Levels[L2-1]
	if lp.Retunes != 2 || lp.Suppressed != 1 {
		t.Fatalf("retunes/suppressed = %d/%d, want 2/1", lp.Retunes, lp.Suppressed)
	}
	if lp.Failures != 12 || lp.MTBF != 50*time.Second {
		t.Fatalf("state failures/mtbf = %d/%v, want 12/50s", lp.Failures, lp.MTBF)
	}
}

func TestObserveCostEWMA(t *testing.T) {
	tn := New(Config{Alpha: 0.5})
	tn.ObserveCost(L1, 10*time.Millisecond) // seeds
	tn.ObserveCost(L1, 20*time.Millisecond) // 0.5·20 + 0.5·10 = 15
	if got := tn.State().Levels[0].Cost; got != 15*time.Millisecond {
		t.Fatalf("EWMA cost = %v, want 15ms", got)
	}
	tn.ObserveCost(L1, 0)            // ignored
	tn.ObserveCost(L1, -time.Second) // ignored
	tn.ObserveCost(0, time.Second)   // out of range: ignored
	tn.ObserveCost(NumLevels+1, time.Second)
	if got := tn.State().Levels[0].Cost; got != 15*time.Millisecond {
		t.Fatalf("degenerate samples moved the EWMA to %v", got)
	}
}

func TestSetIntervalAndState(t *testing.T) {
	tn := New(Config{})
	tn.SetAuto(true)
	tn.SetInterval(L1, 4*time.Millisecond)
	tn.SetInterval(L3, 64*time.Millisecond)
	tn.SetInterval(0, time.Second)           // ignored
	tn.SetInterval(NumLevels+1, time.Second) // ignored
	if got := tn.Interval(L1); got != 4*time.Millisecond {
		t.Fatalf("Interval(L1) = %v", got)
	}
	if got := tn.Interval(99); got != 0 {
		t.Fatalf("Interval(99) = %v, want 0", got)
	}
	st := tn.State()
	if !st.Auto || len(st.Levels) != NumLevels {
		t.Fatalf("state = %+v", st)
	}
	if st.Levels[0].Interval != 4*time.Millisecond || st.Levels[2].Interval != 64*time.Millisecond {
		t.Fatalf("levels = %+v", st.Levels)
	}
	for i, lp := range st.Levels {
		if lp.Level != i+1 {
			t.Fatalf("level index %d numbered %d", i, lp.Level)
		}
	}
	// Seeding via SetInterval is not a retune.
	if st.Levels[0].Retunes != 0 {
		t.Fatalf("SetInterval counted a retune")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Min != DefaultMin || cfg.Max != DefaultMax ||
		cfg.Hysteresis != DefaultHysteresis || cfg.Alpha != DefaultAlpha {
		t.Fatalf("defaults = %+v", cfg)
	}
	// Max below Min collapses to Min, never inverts.
	cfg = Config{Min: time.Hour, Max: time.Second}.withDefaults()
	if cfg.Max != time.Hour {
		t.Fatalf("inverted bounds: Max = %v, want Min %v", cfg.Max, time.Hour)
	}
	if New(Config{Alpha: 2}).Config().Alpha != DefaultAlpha {
		t.Fatalf("alpha > 1 not reset to default")
	}
}

func TestLevelName(t *testing.T) {
	if LevelName(L1) != "L1" || LevelName(L2) != "L2" || LevelName(L3) != "L3" {
		t.Fatalf("level names wrong")
	}
	if LevelName(7) != "L?7" {
		t.Fatalf("out-of-range name = %q", LevelName(7))
	}
}

// The planner must be deterministic: identical observations plan
// identical cadences (no wall clock, no randomness).
func TestPlanDeterministic(t *testing.T) {
	plan := func() []time.Duration {
		tn := New(Config{Min: time.Millisecond, Max: time.Second})
		out := make([]time.Duration, 0, NumLevels)
		for lvl := L1; lvl <= NumLevels; lvl++ {
			tn.ObserveCost(lvl, time.Duration(lvl)*5*time.Millisecond)
			iv, _ := tn.Plan(lvl, 3*lvl, 30*time.Second)
			out = append(out, iv)
		}
		return out
	}
	a, b := plan(), plan()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
	// And the formula is monotone in MTBF: more failures, shorter plans.
	m1 := Optimal(time.Second, 100*time.Second)
	m2 := Optimal(time.Second, 400*time.Second)
	if !(m2 > m1) || math.Abs(float64(m2)/float64(m1)-2) > 0.01 {
		t.Fatalf("sqrt scaling broken: %v vs %v", m1, m2)
	}
}
