// Package cadence computes checkpoint intervals from first principles:
// the Young/Daly optimal checkpoint interval sqrt(2·δ·MTBF), applied
// per durability level (DESIGN.md §5g).
//
// The multilevel pipeline gives each level its own cost δ and its own
// failure process: an L1 seal costs only the application-blocked
// quiesce+capture and protects against process faults, an L2 replica
// push costs one node-to-node stage copy and protects against a node
// loss, an L3 stable commit costs the full gather→commit→replicate
// drain and protects against losing the cluster's node-local state
// (and rides out stable-store outages). The Tuner closes the loop:
// EWMA-smoothed per-level cost observations plus observed failure
// counts yield a per-level MTBF estimate, the Young/Daly formula yields
// the target interval, and hysteresis keeps the planner from thrashing
// on noisy estimates. A level that has seen no failure yet plans
// against a Laplace prior — one assumed failure at the horizon of the
// observation window — so a cold start is protected immediately and
// the cadence relaxes as sqrt(elapsed) while the window stays clean.
//
// Everything here is a pure function of its inputs — no wall clock, no
// goroutines — so the planner is exactly testable: the same
// observations always plan the same cadences.
package cadence

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Checkpoint levels. Levels are ordered by durability: a higher level's
// copy subsumes the lower levels' protection for the same interval.
const (
	// L1 is the node-local rung: the interval is sealed under
	// LOCAL_COMMITTED markers on the nodes that captured it.
	L1 = 1
	// L2 is the replica rung: each node's sealed stage also lives on a
	// peer node, so the interval survives a single node loss.
	L2 = 2
	// L3 is the stable rung: the interval is gathered, committed and
	// replicated on stable storage.
	L3 = 3
	// NumLevels is how many levels the tuner plans for.
	NumLevels = 3
)

// Defaults for Config's zero values.
const (
	DefaultMin        = time.Millisecond
	DefaultMax        = time.Minute
	DefaultHysteresis = 0.25
	DefaultAlpha      = 0.3
)

// Optimal is the Young/Daly first-order optimum: the checkpoint
// interval sqrt(2·δ·MTBF) for a checkpoint of cost δ under a mean time
// between failures MTBF. Degenerate inputs return 0 ("no opinion"):
// a non-positive cost means the level is free (checkpoint as often as
// the floor allows) and a non-positive MTBF means no failure has been
// observed (checkpoint as rarely as the ceiling allows) — the caller's
// clamp decides both. In the high-failure-rate regime where the
// first-order optimum exceeds the MTBF itself (2·δ > MTBF), the
// interval degenerates to the MTBF: checkpointing less than once per
// expected failure period can never help.
func Optimal(cost, mtbf time.Duration) time.Duration {
	if cost <= 0 || mtbf <= 0 {
		return 0
	}
	iv := time.Duration(math.Sqrt(2 * float64(cost) * float64(mtbf)))
	if iv > mtbf {
		iv = mtbf
	}
	return iv
}

// MTBF estimates the mean time between failures from a failure count
// observed over an elapsed window. Zero failures (or a non-positive
// window) return 0: no estimate, not "infinitely reliable".
func MTBF(failures int, elapsed time.Duration) time.Duration {
	if failures <= 0 || elapsed <= 0 {
		return 0
	}
	return elapsed / time.Duration(failures)
}

// Config bounds the Tuner's plans. The zero value uses the package
// defaults.
type Config struct {
	// Min and Max clamp every planned interval. Min also serves as the
	// plan when a level's cost is effectively free; Max is where the
	// Laplace-prior backoff settles once a long window stays
	// failure-free.
	Min, Max time.Duration
	// Hysteresis is the minimum relative change (|new−current|/current)
	// a recomputed target must show before the tuner adopts it. Noisy
	// cost and MTBF estimates otherwise retune every replan tick.
	Hysteresis float64
	// Alpha is the EWMA weight of the newest cost observation.
	Alpha float64
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Min <= 0 {
		c.Min = DefaultMin
	}
	if c.Max < c.Min {
		c.Max = DefaultMax
		if c.Max < c.Min {
			c.Max = c.Min
		}
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = DefaultHysteresis
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = DefaultAlpha
	}
	return c
}

// clamp bounds a raw target, resolving the degenerate 0 ("no opinion")
// cases: free checkpoints run at Min, an empty observation window (no
// elapsed time at all — the Laplace prior covers the failure-free case)
// at Max.
func (c Config) clamp(raw time.Duration, cost, mtbf time.Duration) time.Duration {
	switch {
	case mtbf <= 0:
		// No observation window at all: back off to the ceiling.
		return c.Max
	case raw <= 0 && cost <= 0:
		// Failures observed and the level is free: the floor.
		return c.Min
	}
	if raw < c.Min {
		return c.Min
	}
	if raw > c.Max {
		return c.Max
	}
	return raw
}

// LevelPlan is one level's tuner state snapshot.
type LevelPlan struct {
	// Level is the checkpoint level (L1..L3).
	Level int
	// Interval is the currently planned cadence.
	Interval time.Duration
	// Cost is the EWMA-smoothed checkpoint cost δ.
	Cost time.Duration
	// MTBF is the failure-interval estimate from the last Plan call —
	// the Laplace prior (the elapsed window itself) while the level has
	// observed no failure.
	MTBF time.Duration
	// Failures is the observed failure count from the last Plan call.
	Failures int
	// Retunes counts adopted interval changes; Suppressed counts
	// recomputations the hysteresis band swallowed.
	Retunes    int
	Suppressed int
}

// State is a snapshot of the whole tuner, fit for the control plane.
type State struct {
	// Auto reports the tuner is re-planning online (false when the
	// levels run fixed cadences and the tuner only records them).
	Auto bool
	// Levels holds one plan per level, L1 first.
	Levels []LevelPlan
}

// Tuner plans per-level checkpoint cadences. Safe for concurrent use:
// the supervise loop observes and plans while the control plane reads
// State.
type Tuner struct {
	cfg Config

	mu     sync.Mutex
	auto   bool
	levels [NumLevels]LevelPlan
	seeded [NumLevels]bool // cost has at least one observation
}

// New builds a tuner with the given bounds (zero Config = defaults).
func New(cfg Config) *Tuner {
	t := &Tuner{cfg: cfg.withDefaults()}
	for i := range t.levels {
		t.levels[i].Level = i + 1
	}
	return t
}

// Config reports the tuner's resolved bounds.
func (t *Tuner) Config() Config { return t.cfg }

// SetAuto records whether the tuner drives the cadences (true) or just
// mirrors fixed ones (false); surfaced via State.
func (t *Tuner) SetAuto(auto bool) {
	t.mu.Lock()
	t.auto = auto
	t.mu.Unlock()
}

// SetInterval seeds (or pins) a level's current cadence without
// counting a retune — the starting point hysteresis measures against.
func (t *Tuner) SetInterval(level int, iv time.Duration) {
	if level < L1 || level > NumLevels {
		return
	}
	t.mu.Lock()
	t.levels[level-1].Interval = iv
	t.mu.Unlock()
}

// Interval reports a level's current planned cadence.
func (t *Tuner) Interval(level int) time.Duration {
	if level < L1 || level > NumLevels {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.levels[level-1].Interval
}

// ObserveCost folds one checkpoint-cost sample into a level's EWMA
// estimate. Non-positive samples are ignored (a free observation says
// nothing about δ).
func (t *Tuner) ObserveCost(level int, cost time.Duration) {
	if level < L1 || level > NumLevels || cost <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ls := &t.levels[level-1]
	if !t.seeded[level-1] {
		ls.Cost = cost
		t.seeded[level-1] = true
		return
	}
	ls.Cost = time.Duration(t.cfg.Alpha*float64(cost) + (1-t.cfg.Alpha)*float64(ls.Cost))
}

// Plan recomputes one level's cadence from its EWMA cost and the
// failure history (failures observed over elapsed), returning the
// planned interval and whether it changed. A recomputed target inside
// the hysteresis band of the current interval is suppressed; a level
// with no current interval adopts the first target unconditionally.
func (t *Tuner) Plan(level, failures int, elapsed time.Duration) (time.Duration, bool) {
	if level < L1 || level > NumLevels {
		return 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ls := &t.levels[level-1]
	ls.Failures = failures
	ls.MTBF = MTBF(failures, elapsed)
	raw := Optimal(ls.Cost, ls.MTBF)
	if ls.MTBF <= 0 && elapsed > 0 {
		// Laplace prior: a failure-free window is not evidence of
		// reliability, it is absence of evidence — and a cold-started
		// level parked at the ceiling is one failure away from losing
		// the whole run. Assume one failure at the horizon (MTBF =
		// elapsed): the plan starts tight and relaxes as sqrt(elapsed)
		// while the window stays clean, converging to the ceiling. The
		// thrash cap (interval ≤ MTBF) is deliberately skipped — it
		// encodes a measured failure rate, which the prior is not.
		ls.MTBF = elapsed
		if ls.Cost > 0 {
			raw = time.Duration(math.Sqrt(2 * float64(ls.Cost) * float64(elapsed)))
		}
	}
	target := t.cfg.clamp(raw, ls.Cost, ls.MTBF)
	if ls.Interval > 0 {
		delta := math.Abs(float64(target-ls.Interval)) / float64(ls.Interval)
		if delta < t.cfg.Hysteresis {
			ls.Suppressed++
			return ls.Interval, false
		}
	}
	if target == ls.Interval {
		return ls.Interval, false
	}
	ls.Interval = target
	ls.Retunes++
	return target, true
}

// State snapshots every level's plan.
func (t *Tuner) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := State{Auto: t.auto, Levels: make([]LevelPlan, NumLevels)}
	copy(st.Levels, t.levels[:])
	return st
}

// LevelName renders a level for tables and logs ("L1".."L3").
func LevelName(level int) string {
	if level < L1 || level > NumLevels {
		return fmt.Sprintf("L?%d", level)
	}
	return fmt.Sprintf("L%d", level)
}
