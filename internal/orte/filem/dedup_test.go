package filem

import (
	"bytes"
	"fmt"
	"path"
	"testing"
	"time"

	"repro/internal/faultsim"
	"repro/internal/vfs"
)

// seedBaseline writes a previous interval's tree on stable storage and
// returns the content-addressed index over it, the way SNAPC builds one
// from a committed manifest.
func seedBaseline(t *testing.T, stable vfs.FS, dir string, files map[string][]byte) *Baseline {
	t.Helper()
	byHash := make(map[string]string, len(files))
	for rel, data := range files {
		if err := stable.WriteFile(path.Join(dir, rel), data); err != nil {
			t.Fatal(err)
		}
		byHash[vfs.HashBytes(data)] = rel
	}
	return &Baseline{Dir: dir, ByHash: byHash}
}

func TestDedupMoveIsByteIdenticalToFull(t *testing.T) {
	for name, comp := range components() {
		t.Run(name, func(t *testing.T) {
			// Interval 0 on stable storage: two unchanged files, large
			// enough that transfer bandwidth (not per-request latency)
			// dominates the modeled cost — the regime dedup targets.
			envA, storesA := testEnv(1)
			envB, storesB := testEnv(1)
			prev := map[string][]byte{
				"s/keep1": bytes.Repeat([]byte("unchanged content one|"), 12000),
				"s/keep2": bytes.Repeat([]byte("unchanged content two|"), 12000),
			}
			base := seedBaseline(t, storesA[StableNode], "g/0", prev)
			seedBaseline(t, storesB[StableNode], "g/0", prev)

			// The node's interval-1 state: keep1/keep2 unchanged, delta new.
			for _, stores := range []map[string]*vfs.Mem{storesA, storesB} {
				for rel, data := range prev {
					if err := stores["n0"].WriteFile(path.Join("tmp", rel), data); err != nil {
						t.Fatal(err)
					}
				}
				if err := stores["n0"].WriteFile("tmp/s/delta", []byte("fresh bytes")); err != nil {
					t.Fatal(err)
				}
			}

			full := Request{SrcNode: "n0", SrcPath: "tmp", DstNode: StableNode, DstPath: "g/1"}
			incr := full
			incr.Baseline = base
			stFull, err := comp.Move(envA, []Request{full})
			if err != nil {
				t.Fatalf("full Move: %v", err)
			}
			stIncr, err := comp.Move(envB, []Request{incr})
			if err != nil {
				t.Fatalf("incremental Move: %v", err)
			}

			// Byte-identical destination trees.
			err = vfs.Walk(storesA[StableNode], "g/1", func(p string, _ vfs.FileInfo) error {
				want, _ := storesA[StableNode].ReadFile(p)
				got, err := storesB[StableNode].ReadFile(p)
				if err != nil || string(got) != string(want) {
					t.Errorf("%s: full=%q incremental=%q (%v)", p, want, got, err)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}

			// Accounting: same total payload, but only the delta crossed the
			// network and the rest was materialized locally after hashing.
			total := int64(len(prev["s/keep1"]) + len(prev["s/keep2"]) + len("fresh bytes"))
			if stFull.Bytes != total || stIncr.Bytes != total {
				t.Errorf("Bytes: full=%d incr=%d, want %d", stFull.Bytes, stIncr.Bytes, total)
			}
			if stFull.BytesMoved != total || stFull.BytesDeduped != 0 || stFull.BytesHashed != 0 {
				t.Errorf("full stats = %+v, want all bytes moved, none hashed/deduped", stFull)
			}
			if want := int64(len("fresh bytes")); stIncr.BytesMoved != want {
				t.Errorf("incremental BytesMoved = %d, want %d", stIncr.BytesMoved, want)
			}
			if want := total - int64(len("fresh bytes")); stIncr.BytesDeduped != want {
				t.Errorf("incremental BytesDeduped = %d, want %d", stIncr.BytesDeduped, want)
			}
			if stIncr.BytesHashed != total {
				t.Errorf("incremental BytesHashed = %d, want %d", stIncr.BytesHashed, total)
			}
			if envB.Ins.Log.Count("filem.dedup.hit") != 2 || envB.Ins.Log.Count("filem.dedup.miss") != 1 {
				t.Errorf("dedup events: %d hits, %d misses, want 2/1",
					envB.Ins.Log.Count("filem.dedup.hit"), envB.Ins.Log.Count("filem.dedup.miss"))
			}
			if envB.Ins.Log.CountPrefix("filem.dedup.") != 3 {
				t.Errorf("CountPrefix(filem.dedup.) = %d, want 3", envB.Ins.Log.CountPrefix("filem.dedup."))
			}
			if stIncr.Simulated >= stFull.Simulated {
				t.Errorf("incremental cost %v not below full cost %v", stIncr.Simulated, stFull.Simulated)
			}
		})
	}
}

func TestFullyDedupedMoveSkipsNetwork(t *testing.T) {
	env, stores := testEnv(1)
	data := []byte("static state that never changes")
	base := seedBaseline(t, stores[StableNode], "g/0", map[string][]byte{"img": data})
	if err := stores["n0"].WriteFile("tmp/img", data); err != nil {
		t.Fatal(err)
	}
	// Every network transfer would fail — a fully deduplicated gather must
	// not notice, because no byte touches a link.
	withFaults(env, faultsim.Rule{Point: "filem.transfer", Prob: 1})
	netFired := 0
	env.Topo.SetInject(func(point string) error {
		netFired++
		return nil
	})
	st, err := (&Raw{}).Move(env, []Request{{
		SrcNode: "n0", SrcPath: "tmp", DstNode: StableNode, DstPath: "g/1", Baseline: base,
	}})
	if err != nil {
		t.Fatalf("fully deduplicated Move hit the dead network: %v", err)
	}
	if st.BytesMoved != 0 || st.BytesDeduped != int64(len(data)) {
		t.Errorf("stats = %+v, want all bytes deduped", st)
	}
	if netFired != 0 {
		t.Errorf("netsim link injection fired %d times for a network-free gather", netFired)
	}
	if got, _ := stores[StableNode].ReadFile("g/1/img"); string(got) != string(data) {
		t.Errorf("materialized content = %q", got)
	}
}

func TestDedupFallsBackWhenBaselineUnreadable(t *testing.T) {
	env, stores := testEnv(1)
	data := []byte("content whose baseline copy was pruned")
	base := seedBaseline(t, stores[StableNode], "g/0", map[string][]byte{"img": data})
	// The index claims a hit but the previous interval is gone.
	if err := stores[StableNode].Remove("g/0"); err != nil {
		t.Fatal(err)
	}
	if err := stores["n0"].WriteFile("tmp/img", data); err != nil {
		t.Fatal(err)
	}
	st, err := (&RSH{}).Move(env, []Request{{
		SrcNode: "n0", SrcPath: "tmp", DstNode: StableNode, DstPath: "g/1", Baseline: base,
	}})
	if err != nil {
		t.Fatalf("Move with stale baseline: %v", err)
	}
	if st.BytesMoved != int64(len(data)) || st.BytesDeduped != 0 {
		t.Errorf("stats = %+v, want fallback to a full transfer", st)
	}
	if got, _ := stores[StableNode].ReadFile("g/1/img"); string(got) != string(data) {
		t.Errorf("content after fallback = %q", got)
	}
}

// TestRawOverlapsRetryBackoffs is the regression test for the grouped
// retry-accounting bug: Raw.Move used to charge each stream's backoff to
// the shared clock from its goroutine, serializing overlapped backoffs
// (and never charging failed attempts' transfer time). With the fix the
// clock is charged exactly the grouped schedule cost, so two streams
// backing off concurrently cost one backoff, not two.
func TestRawOverlapsRetryBackoffs(t *testing.T) {
	const backoff = 10 * time.Millisecond
	env, stores := testEnv(2)
	env.Retry = RetryPolicy{Max: 1, Backoff: backoff}
	// Each node's first transfer attempt fails; the retry lands.
	withFaults(env,
		faultsim.Rule{Point: "filem.transfer:n0", Prob: 1, Times: 1},
		faultsim.Rule{Point: "filem.transfer:n1", Prob: 1, Times: 1},
	)
	for _, n := range []string{"n0", "n1"} {
		if err := stores[n].WriteFile("snap/img", []byte("payload-"+n)); err != nil {
			t.Fatal(err)
		}
	}
	before := env.Clock.Elapsed()
	st, err := (&Raw{}).Move(env, []Request{
		{SrcNode: "n0", SrcPath: "snap", DstNode: StableNode, DstPath: "g/s0"},
		{SrcNode: "n1", SrcPath: "snap", DstNode: StableNode, DstPath: "g/s1"},
	})
	if err != nil {
		t.Fatalf("Move: %v", err)
	}
	charged := env.Clock.Elapsed() - before
	if charged != st.Simulated {
		t.Errorf("clock charged %v, want exactly Stats.Simulated %v", charged, st.Simulated)
	}
	if st.Simulated < backoff {
		t.Errorf("Simulated = %v, want at least one %v backoff", st.Simulated, backoff)
	}
	if st.Simulated >= 2*backoff {
		t.Errorf("Simulated = %v: concurrent backoffs were serialized (>= %v)", st.Simulated, 2*backoff)
	}
}

// TestFailedMoveChargesTimeSpent pins the other half of the accounting
// fix: an exhausted request charges the clock for the backoffs and the
// modeled time its failed attempts consumed, instead of charging nothing.
func TestFailedMoveChargesTimeSpent(t *testing.T) {
	for name, comp := range components() {
		t.Run(name, func(t *testing.T) {
			env, stores := testEnv(1)
			env.Retry = RetryPolicy{Max: 2, Backoff: time.Millisecond}
			withFaults(env, faultsim.Rule{Point: "filem.transfer", Prob: 1})
			if err := stores["n0"].WriteFile("snap/img", []byte("payload")); err != nil {
				t.Fatal(err)
			}
			before := env.Clock.Elapsed()
			if _, err := comp.Move(env, []Request{{SrcNode: "n0", SrcPath: "snap", DstNode: StableNode, DstPath: "g/snap"}}); err == nil {
				t.Fatal("Move under a dead link succeeded")
			}
			// Two backoffs (1ms + 2ms) were spent waiting before giving up.
			if charged := env.Clock.Elapsed() - before; charged < 3*time.Millisecond {
				t.Errorf("failed Move charged %v, want >= 3ms of consumed backoff", charged)
			}
		})
	}
}

// TestDedupRequestStillTimesOut ensures the per-request timeout applies
// to the incremental path's modeled cost too.
func TestDedupRequestStillTimesOut(t *testing.T) {
	env, stores := testEnv(1)
	env.Retry = RetryPolicy{Max: 3, Backoff: time.Microsecond, Timeout: time.Nanosecond}
	base := seedBaseline(t, stores[StableNode], "g/0", map[string][]byte{"other": []byte("different")})
	if err := stores["n0"].WriteFile("tmp/img", make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	_, err := (&RSH{}).Move(env, []Request{{
		SrcNode: "n0", SrcPath: "tmp", DstNode: StableNode, DstPath: "g/1", Baseline: base,
	}})
	if err == nil {
		t.Fatal("over-budget dedup request succeeded")
	}
	if n := env.Ins.Log.Count("filem.retry"); n != 0 {
		t.Errorf("timed-out dedup request was retried %d times", n)
	}
	if vfs.Exists(stores[StableNode], "g/1") {
		t.Error("timed-out dedup move left debris on stable storage")
	}
}

// quick sanity: an env without topology or clock still dedups correctly.
func TestDedupWithoutTopology(t *testing.T) {
	stores := map[string]*vfs.Mem{StableNode: vfs.NewMem(), "n0": vfs.NewMem()}
	env := &Env{Resolve: func(node string) (vfs.FS, error) {
		fsys, ok := stores[node]
		if !ok {
			return nil, fmt.Errorf("no such node")
		}
		return fsys, nil
	}}
	data := []byte("x")
	base := seedBaseline(t, stores[StableNode], "g/0", map[string][]byte{"img": data})
	if err := stores["n0"].WriteFile("tmp/img", data); err != nil {
		t.Fatal(err)
	}
	st, err := (&RSH{}).Move(env, []Request{{
		SrcNode: "n0", SrcPath: "tmp", DstNode: StableNode, DstPath: "g/1", Baseline: base,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesDeduped != 1 || st.Simulated != 0 {
		t.Errorf("stats = %+v", st)
	}
}
