// Package filem implements the paper's ORTE FILEM framework (§5.2,
// §6.2): remote file management for the runtime. It supports the three
// operations the design requires — broadcast (preload files onto remote
// machines before starting processes there), gather (move remote local
// snapshots to stable storage), and remove (clean up preloaded or
// temporary checkpoint data) — and accepts grouped request lists so a
// component can use collective algorithms to avoid network congestion.
//
// FILEM knows every machine in the job but nothing about MPI semantics,
// so it lives at the ORTE layer, exactly as the paper places it. File
// bytes move for real between the per-node virtual filesystems; the
// network cost of each transfer is charged to a simulated clock using
// the netsim topology (see DESIGN.md's substitution table).
package filem

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"sync"
	"time"

	"repro/internal/mca"
	"repro/internal/netsim"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// FrameworkName is the MCA selection parameter for this framework.
const FrameworkName = "filem"

// StableNode is the pseudo-node name addressing stable storage. The
// paper's stable storage is a shared filesystem that survives node
// failures; modeling it as a distinguished node keeps the component API
// uniform across node-to-node and node-to-storage movement.
const StableNode = "#stable"

// ErrUnknownNode reports a request naming a node the environment cannot
// resolve.
var ErrUnknownNode = errors.New("filem: unknown node")

// ErrRequestTimeout reports a transfer whose modeled duration exceeded
// the per-request timeout: the coordinator treats the request as failed
// rather than waiting out an unbounded stall.
var ErrRequestTimeout = errors.New("filem: request timed out")

// RetryPolicy bounds how FILEM reacts to transfer failures: up to Max
// retries after the first attempt, waiting Backoff before the first
// retry and growing it by Multiplier each time (exponential backoff,
// charged to the simulated clock), with Timeout capping each request's
// modeled transfer duration.
type RetryPolicy struct {
	Max        int           // retries after the first attempt (0 = fail fast)
	Backoff    time.Duration // delay before the first retry
	Multiplier float64       // backoff growth factor; <1 means the default 2
	Timeout    time.Duration // per-request modeled-duration bound (0 = none)
}

func (p RetryPolicy) multiplier() float64 {
	if p.Multiplier < 1 {
		return 2
	}
	return p.Multiplier
}

// Env supplies a component with the cluster's filesystems and network.
type Env struct {
	// Resolve returns the filesystem of the named node (or StableNode).
	Resolve func(node string) (vfs.FS, error)
	// Topo models transfer costs. Optional: if nil, transfers are free.
	Topo *netsim.Topology
	// Clock accrues simulated transfer time. Optional.
	Clock *netsim.Clock
	// Log receives filem.* trace events. Optional.
	Log *trace.Log
	// Retry bounds per-request failure handling. The zero value fails
	// fast with no timeout (the pre-robustness behavior).
	Retry RetryPolicy
	// Inject is the fault-injection hook ("filem.transfer:<src>><dst>",
	// "filem.remove:<node>"). Optional.
	Inject func(point string) error
}

func (e *Env) inject(point string) error {
	if e.Inject == nil {
		return nil
	}
	return e.Inject(point)
}

func (e *Env) fs(node string) (vfs.FS, error) {
	if e.Resolve == nil {
		return nil, fmt.Errorf("%w: no resolver configured", ErrUnknownNode)
	}
	fsys, err := e.Resolve(node)
	if err != nil {
		return nil, fmt.Errorf("%w: %q: %v", ErrUnknownNode, node, err)
	}
	return fsys, nil
}

// transferCost returns the modeled duration of moving n bytes between
// two (pseudo-)nodes.
func (e *Env) transferCost(src, dst string, n int64) (time.Duration, error) {
	if e.Topo == nil {
		return 0, nil
	}
	switch {
	case src == StableNode && dst == StableNode:
		return 0, nil
	case dst == StableNode:
		return e.Topo.NodeToStorage(src, n)
	case src == StableNode:
		return e.Topo.NodeToStorage(dst, n)
	default:
		return e.Topo.NodeToNode(src, dst, n)
	}
}

func (e *Env) charge(d time.Duration) {
	if e.Clock != nil {
		e.Clock.Advance(d)
	}
}

// Request names one tree movement from a source node to a destination.
type Request struct {
	SrcNode string
	SrcPath string
	DstNode string
	DstPath string
}

// Stats reports what a FILEM operation did: real bytes moved and the
// modeled network time charged for them.
type Stats struct {
	Bytes     int64
	Simulated time.Duration
	Transfers int
}

func (s Stats) add(o Stats) Stats {
	return Stats{Bytes: s.Bytes + o.Bytes, Simulated: s.Simulated + o.Simulated, Transfers: s.Transfers + o.Transfers}
}

// Component is a FILEM implementation. Move executes a grouped request
// list (the gather/broadcast building block); Remove deletes remote
// paths. How a component schedules the requests — serially like repeated
// rsh/scp invocations, or overlapped like a collective — is the
// technique under study.
type Component interface {
	mca.Component
	// Move executes all requests, moving file trees between nodes.
	Move(env *Env, reqs []Request) (Stats, error)
	// Remove deletes the named paths on the given node. Missing paths
	// are reported as errors, matching the strictness of `rm` without -f.
	Remove(env *Env, node string, paths []string) error
}

// NewFramework returns the FILEM framework with the built-in components
// registered: rsh (sequential remote copies, the paper's first
// component, default) and raw (grouped transfers that overlap node
// uplinks, the congestion-avoiding alternative the paper anticipates).
func NewFramework() *mca.Framework[Component] {
	f := mca.NewFramework[Component](FrameworkName)
	f.MustRegister(&RSH{})
	f.MustRegister(&Raw{})
	return f
}

// Broadcast preloads the tree at srcPath on srcNode onto every
// destination node at dstPath using component c. It is a convenience
// wrapper building the grouped request list the framework API takes.
func Broadcast(c Component, env *Env, srcNode, srcPath string, dstNodes []string, dstPath string) (Stats, error) {
	reqs := make([]Request, 0, len(dstNodes))
	for _, n := range dstNodes {
		reqs = append(reqs, Request{SrcNode: srcNode, SrcPath: srcPath, DstNode: n, DstPath: dstPath})
	}
	return c.Move(env, reqs)
}

// copyOne performs the real data movement for one request and returns
// its stats. Shared by both components; they differ only in scheduling
// and cost accounting.
func copyOne(env *Env, r Request) (Stats, error) {
	if err := env.inject(fmt.Sprintf("filem.transfer:%s>%s", r.SrcNode, r.DstNode)); err != nil {
		return Stats{}, fmt.Errorf("filem: move %s:%s -> %s:%s: %w", r.SrcNode, r.SrcPath, r.DstNode, r.DstPath, err)
	}
	srcFS, err := env.fs(r.SrcNode)
	if err != nil {
		return Stats{}, err
	}
	dstFS, err := env.fs(r.DstNode)
	if err != nil {
		return Stats{}, err
	}
	n, err := vfs.CopyTree(srcFS, r.SrcPath, dstFS, r.DstPath)
	if err != nil {
		return Stats{}, fmt.Errorf("filem: move %s:%s -> %s:%s: %w", r.SrcNode, r.SrcPath, r.DstNode, r.DstPath, err)
	}
	cost, err := env.transferCost(r.SrcNode, r.DstNode, n)
	if err != nil {
		return Stats{}, err
	}
	if t := env.Retry.Timeout; t > 0 && cost > t {
		return Stats{}, fmt.Errorf("filem: move %s:%s -> %s:%s: modeled transfer %v exceeds request timeout %v: %w",
			r.SrcNode, r.SrcPath, r.DstNode, r.DstPath, cost, t, ErrRequestTimeout)
	}
	env.Log.Emit("filem", "filem.copy", "%s:%s -> %s:%s (%d bytes, %v)", r.SrcNode, r.SrcPath, r.DstNode, r.DstPath, n, cost)
	return Stats{Bytes: n, Simulated: cost, Transfers: 1}, nil
}

// cleanupPartial removes whatever a failed copy left at the destination
// so a retry (or the caller's rollback) starts from a clean slate.
// Best-effort: a missing destination is the common, silent case.
func cleanupPartial(env *Env, r Request) {
	dstFS, err := env.fs(r.DstNode)
	if err != nil {
		return
	}
	if err := dstFS.Remove(r.DstPath); err == nil {
		env.Log.Emit("filem", "filem.cleanup", "removed partial %s:%s", r.DstNode, r.DstPath)
	}
}

// copyWithRetry runs one request under the environment's retry policy:
// failed attempts clean up their partial destination and back off
// exponentially (charged to the simulated clock, like the transfers
// themselves). Deterministic failures — a request that would exceed its
// modeled timeout on every attempt — are not retried.
func copyWithRetry(env *Env, r Request) (Stats, error) {
	pol := env.Retry
	backoff := pol.Backoff
	var lastErr error
	for attempt := 0; attempt <= pol.Max; attempt++ {
		if attempt > 0 {
			env.charge(backoff)
			env.Log.Emit("filem", "filem.retry", "attempt %d/%d %s:%s -> %s:%s (backoff %v): %v",
				attempt+1, pol.Max+1, r.SrcNode, r.SrcPath, r.DstNode, r.DstPath, backoff, lastErr)
			backoff = time.Duration(float64(backoff) * pol.multiplier())
		}
		st, err := copyOne(env, r)
		if err == nil {
			return st, nil
		}
		lastErr = err
		cleanupPartial(env, r)
		if errors.Is(err, ErrRequestTimeout) {
			break // the modeled cost will not change; retrying is futile
		}
	}
	return Stats{}, fmt.Errorf("filem: giving up on %s:%s -> %s:%s after %d attempt(s): %w",
		r.SrcNode, r.SrcPath, r.DstNode, r.DstPath, env.Retry.Max+1, lastErr)
}

// rollback removes the destinations of already-completed requests after
// a grouped Move failed partway: a failed gather must leave stable
// storage (and any other destination) as clean as if it never started.
func rollback(env *Env, done []Request) {
	for _, r := range done {
		dstFS, err := env.fs(r.DstNode)
		if err != nil {
			continue
		}
		if err := dstFS.Remove(r.DstPath); err == nil {
			env.Log.Emit("filem", "filem.rollback", "removed %s:%s", r.DstNode, r.DstPath)
		}
	}
}

// removeOn removes paths on one node's filesystem, retrying transient
// failures under the environment's policy. A nonexistent path fails
// immediately (matching `rm` without -f): retrying cannot create it.
func removeOn(env *Env, node string, paths []string) error {
	fsys, err := env.fs(node)
	if err != nil {
		return err
	}
	pol := env.Retry
	for _, p := range paths {
		backoff := pol.Backoff
		var lastErr error
		for attempt := 0; attempt <= pol.Max; attempt++ {
			if attempt > 0 {
				env.charge(backoff)
				backoff = time.Duration(float64(backoff) * pol.multiplier())
			}
			err := env.inject("filem.remove:" + node)
			if err == nil {
				err = fsys.Remove(p)
			}
			if err == nil {
				lastErr = nil
				break
			}
			if errors.Is(err, vfs.ErrNotExist) {
				return fmt.Errorf("filem: remove %s:%s: %w", node, p, err)
			}
			lastErr = err
		}
		if lastErr != nil {
			return fmt.Errorf("filem: remove %s:%s: %w", node, p, lastErr)
		}
		env.Log.Emit("filem", "filem.remove", "%s:%s", node, p)
	}
	return nil
}

// RSH models the paper's first FILEM component: RSH/SSH remote execution
// and copy commands issued one after another. Every request is executed
// and charged sequentially.
type RSH struct{}

// Name implements mca.Component.
func (*RSH) Name() string { return "rsh" }

// Priority implements mca.Component; rsh is the paper's default.
func (*RSH) Priority() int { return 20 }

// Move implements Component with strictly sequential transfers. A
// failure (after retries) rolls back the requests that already landed,
// so a partially-failed grouped move leaves no half-gathered debris.
func (*RSH) Move(env *Env, reqs []Request) (Stats, error) {
	var total Stats
	var done []Request
	for _, r := range reqs {
		st, err := copyWithRetry(env, r)
		if err != nil {
			rollback(env, done)
			return total, err
		}
		done = append(done, r)
		total = total.add(st)
	}
	env.charge(total.Simulated)
	return total, nil
}

// Remove implements Component.
func (*RSH) Remove(env *Env, node string, paths []string) error {
	return removeOn(env, node, paths)
}

var _ Component = (*RSH)(nil)

// Raw is the grouped component: all requests are issued together, so
// transfers from distinct nodes overlap and only the shared
// stable-storage ingress serializes them. The charged time is the
// grouped-gather model from netsim: max(slowest stream, ingress bound).
type Raw struct{}

// Name implements mca.Component.
func (*Raw) Name() string { return "raw" }

// Priority implements mca.Component.
func (*Raw) Priority() int { return 10 }

// Move implements Component with overlapped transfers. If any stream
// fails (after retries), the streams that completed are rolled back so
// the grouped move is all-or-nothing.
func (*Raw) Move(env *Env, reqs []Request) (Stats, error) {
	var (
		mu       sync.Mutex
		total    Stats
		firstErr error
		wg       sync.WaitGroup
	)
	perStream := make([]time.Duration, len(reqs))
	completed := make([]bool, len(reqs))
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r Request) {
			defer wg.Done()
			st, err := copyWithRetry(env, r)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			completed[i] = true
			perStream[i] = st.Simulated
			total.Bytes += st.Bytes
			total.Transfers += st.Transfers
		}(i, r)
	}
	wg.Wait()
	if firstErr != nil {
		var done []Request
		for i, ok := range completed {
			if ok {
				done = append(done, reqs[i])
			}
		}
		rollback(env, done)
		return total, firstErr
	}
	total.Simulated = groupedCost(env, reqs, perStream, total.Bytes)
	env.charge(total.Simulated)
	return total, nil
}

// groupedCost computes the modeled duration of the overlapped schedule:
// the slowest individual stream, floored by the stable-storage ingress
// serialization bound when storage is involved.
func groupedCost(env *Env, reqs []Request, perStream []time.Duration, totalBytes int64) time.Duration {
	var max time.Duration
	for _, d := range perStream {
		if d > max {
			max = d
		}
	}
	if env.Topo == nil {
		return max
	}
	touchesStorage := false
	for _, r := range reqs {
		if r.SrcNode == StableNode || r.DstNode == StableNode {
			touchesStorage = true
			break
		}
	}
	if touchesStorage {
		if bound := env.Topo.Ingress().TransferTime(totalBytes); bound > max {
			return bound
		}
	}
	return max
}

// Remove implements Component.
func (*Raw) Remove(env *Env, node string, paths []string) error {
	return removeOn(env, node, paths)
}

var _ Component = (*Raw)(nil)

// ListTree returns the sorted relative file paths under root on node,
// a helper the snapshot coordinator uses to validate gathers.
func ListTree(env *Env, node, root string) ([]string, error) {
	fsys, err := env.fs(node)
	if err != nil {
		return nil, err
	}
	var out []string
	err = vfs.Walk(fsys, root, func(name string, _ vfs.FileInfo) error {
		rel := name
		if root != "." && len(name) > len(root) {
			rel = name[len(root)+1:]
		}
		out = append(out, path.Clean(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}
