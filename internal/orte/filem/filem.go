// Package filem implements the paper's ORTE FILEM framework (§5.2,
// §6.2): remote file management for the runtime. It supports the three
// operations the design requires — broadcast (preload files onto remote
// machines before starting processes there), gather (move remote local
// snapshots to stable storage), and remove (clean up preloaded or
// temporary checkpoint data) — and accepts grouped request lists so a
// component can use collective algorithms to avoid network congestion.
//
// FILEM knows every machine in the job but nothing about MPI semantics,
// so it lives at the ORTE layer, exactly as the paper places it. File
// bytes move for real between the per-node virtual filesystems; the
// network cost of each transfer is charged to a simulated clock using
// the netsim topology (see DESIGN.md's substitution table).
package filem

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"sync"
	"time"

	"repro/internal/errdef"
	"repro/internal/mca"
	"repro/internal/netsim"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// FrameworkName is the MCA selection parameter for this framework.
const FrameworkName = "filem"

// StableNode is the pseudo-node name addressing stable storage. The
// paper's stable storage is a shared filesystem that survives node
// failures; modeling it as a distinguished node keeps the component API
// uniform across node-to-node and node-to-storage movement.
const StableNode = "#stable"

// ErrUnknownNode reports a request naming a node the environment cannot
// resolve. It aliases errdef.ErrUnknownNode.
var ErrUnknownNode = errdef.ErrUnknownNode

// ErrRequestTimeout reports a transfer whose modeled duration exceeded
// the per-request timeout: the coordinator treats the request as failed
// rather than waiting out an unbounded stall. It aliases
// errdef.ErrRequestTimeout.
var ErrRequestTimeout = errdef.ErrRequestTimeout

// RetryPolicy bounds how FILEM reacts to transfer failures: up to Max
// retries after the first attempt, waiting Backoff before the first
// retry and growing it by Multiplier each time (exponential backoff,
// charged to the simulated clock), with Timeout capping each request's
// modeled transfer duration.
type RetryPolicy struct {
	Max        int           // retries after the first attempt (0 = fail fast)
	Backoff    time.Duration // delay before the first retry
	Multiplier float64       // backoff growth factor; <1 means the default 2
	Timeout    time.Duration // per-request modeled-duration bound (0 = none)
}

func (p RetryPolicy) multiplier() float64 {
	if p.Multiplier < 1 {
		return 2
	}
	return p.Multiplier
}

// Env supplies a component with the cluster's filesystems and network.
type Env struct {
	// Resolve returns the filesystem of the named node (or StableNode).
	Resolve func(node string) (vfs.FS, error)
	// Topo models transfer costs. Optional: if nil, transfers are free.
	Topo *netsim.Topology
	// Clock accrues simulated transfer time. Optional.
	Clock *netsim.Clock
	// Ins receives filem.* trace events and byte/retry metrics. Optional.
	Ins *trace.Instrumentation
	// Retry bounds per-request failure handling. The zero value fails
	// fast with no timeout (the pre-robustness behavior).
	Retry RetryPolicy
	// Inject is the fault-injection hook ("filem.transfer:<src>><dst>",
	// "filem.remove:<node>"). Optional.
	Inject func(point string) error
}

func (e *Env) inject(point string) error {
	if e.Inject == nil {
		return nil
	}
	return e.Inject(point)
}

func (e *Env) fs(node string) (vfs.FS, error) {
	if e.Resolve == nil {
		return nil, fmt.Errorf("%w: no resolver configured", ErrUnknownNode)
	}
	fsys, err := e.Resolve(node)
	if err != nil {
		return nil, fmt.Errorf("%w: %q: %v", ErrUnknownNode, node, err)
	}
	return fsys, nil
}

// transferCost returns the modeled duration of moving n bytes between
// two (pseudo-)nodes.
func (e *Env) transferCost(src, dst string, n int64) (time.Duration, error) {
	if e.Topo == nil {
		return 0, nil
	}
	switch {
	case src == StableNode && dst == StableNode:
		return 0, nil
	case dst == StableNode:
		return e.Topo.NodeToStorage(src, n)
	case src == StableNode:
		return e.Topo.NodeToStorage(dst, n)
	default:
		return e.Topo.NodeToNode(src, dst, n)
	}
}

// quoteCost returns the modeled duration of moving n bytes without
// firing any fault-injection hook: the pure what-if cost used to account
// for failed attempts. Unknown nodes quote as free — the error surfaces
// through the transfer itself.
func (e *Env) quoteCost(src, dst string, n int64) time.Duration {
	if e.Topo == nil {
		return 0
	}
	var (
		d   time.Duration
		err error
	)
	switch {
	case src == StableNode && dst == StableNode:
		return 0
	case dst == StableNode:
		d, err = e.Topo.StorageTime(src, n)
	case src == StableNode:
		d, err = e.Topo.StorageTime(dst, n)
	default:
		d, err = e.Topo.PathTime(src, dst, n)
	}
	if err != nil {
		return 0
	}
	return d
}

func (e *Env) charge(d time.Duration) {
	if e.Clock != nil {
		e.Clock.Advance(d)
	}
}

// Baseline is a content-addressed dedup index over a previously gathered
// interval: Dir is that interval's directory on the destination
// filesystem, ByHash maps payload sha256 → path relative to Dir. A Move
// request carrying a baseline hashes each source file and, on an index
// hit, materializes the file by local copy from Dir instead of shipping
// it over the network.
type Baseline struct {
	Dir    string
	ByHash map[string]string
}

// Request names one tree movement from a source node to a destination.
type Request struct {
	SrcNode string
	SrcPath string
	DstNode string
	DstPath string
	// Baseline, when non-nil, enables the content-addressed incremental
	// path for this request. Purely a transfer optimization: the
	// destination tree is byte-identical either way.
	Baseline *Baseline
}

// Stats reports what a FILEM operation did: real bytes handled and the
// modeled time charged for them. Bytes is the total payload; BytesMoved
// is the subset that crossed the network, BytesDeduped the subset
// materialized by storage-local copy from a baseline, BytesHashed the
// bytes read and hashed on source nodes for dedup lookups.
type Stats struct {
	Bytes        int64
	BytesMoved   int64
	BytesDeduped int64
	BytesHashed  int64
	Simulated    time.Duration
	Transfers    int
}

// Add merges two stats, field-wise. Callers that account for several
// moves as one logical operation (e.g. a drain's gather plus its
// replica pushes) sum them with Add.
func (s Stats) Add(o Stats) Stats {
	return s.add(o)
}

func (s Stats) add(o Stats) Stats {
	return Stats{
		Bytes:        s.Bytes + o.Bytes,
		BytesMoved:   s.BytesMoved + o.BytesMoved,
		BytesDeduped: s.BytesDeduped + o.BytesDeduped,
		BytesHashed:  s.BytesHashed + o.BytesHashed,
		Simulated:    s.Simulated + o.Simulated,
		Transfers:    s.Transfers + o.Transfers,
	}
}

// Component is a FILEM implementation. Move executes a grouped request
// list (the gather/broadcast building block); Remove deletes remote
// paths. How a component schedules the requests — serially like repeated
// rsh/scp invocations, or overlapped like a collective — is the
// technique under study.
type Component interface {
	mca.Component
	// Move executes all requests, moving file trees between nodes.
	Move(env *Env, reqs []Request) (Stats, error)
	// Remove deletes the named paths on the given node. Missing paths
	// are reported as errors, matching the strictness of `rm` without -f.
	Remove(env *Env, node string, paths []string) error
}

// NewFramework returns the FILEM framework with the built-in components
// registered: rsh (sequential remote copies, the paper's first
// component, default) and raw (grouped transfers that overlap node
// uplinks, the congestion-avoiding alternative the paper anticipates).
func NewFramework() *mca.Framework[Component] {
	f := mca.NewFramework[Component](FrameworkName)
	f.MustRegister(&RSH{})
	f.MustRegister(&Raw{})
	return f
}

// Broadcast preloads the tree at srcPath on srcNode onto every
// destination node at dstPath using component c. It is a convenience
// wrapper building the grouped request list the framework API takes.
func Broadcast(c Component, env *Env, srcNode, srcPath string, dstNodes []string, dstPath string) (Stats, error) {
	reqs := make([]Request, 0, len(dstNodes))
	for _, n := range dstNodes {
		reqs = append(reqs, Request{SrcNode: srcNode, SrcPath: srcPath, DstNode: n, DstPath: dstPath})
	}
	return c.Move(env, reqs)
}

// copyOne performs the real data movement for one request and returns
// its stats. Shared by both components; they differ only in scheduling
// and cost accounting. On failure the returned Stats.Simulated carries
// the modeled time the failed attempt still consumed (partial transfer,
// or the timeout it waited out) so callers can account for it.
func copyOne(env *Env, r Request) (Stats, error) {
	srcFS, err := env.fs(r.SrcNode)
	if err != nil {
		return Stats{}, err
	}
	dstFS, err := env.fs(r.DstNode)
	if err != nil {
		return Stats{}, err
	}
	if r.Baseline != nil && len(r.Baseline.ByHash) > 0 {
		return dedupCopy(env, r, srcFS, dstFS)
	}
	if err := env.inject(fmt.Sprintf("filem.transfer:%s>%s", r.SrcNode, r.DstNode)); err != nil {
		return Stats{}, fmt.Errorf("filem: move %s:%s -> %s:%s: %w", r.SrcNode, r.SrcPath, r.DstNode, r.DstPath, err)
	}
	n, err := vfs.CopyTree(srcFS, r.SrcPath, dstFS, r.DstPath)
	if err != nil {
		return Stats{Simulated: env.quoteCost(r.SrcNode, r.DstNode, n)},
			fmt.Errorf("filem: move %s:%s -> %s:%s: %w", r.SrcNode, r.SrcPath, r.DstNode, r.DstPath, err)
	}
	cost, err := env.transferCost(r.SrcNode, r.DstNode, n)
	if err != nil {
		return Stats{Simulated: env.quoteCost(r.SrcNode, r.DstNode, n)}, err
	}
	if t := env.Retry.Timeout; t > 0 && cost > t {
		return Stats{Simulated: t}, fmt.Errorf("filem: move %s:%s -> %s:%s: modeled transfer %v exceeds request timeout %v: %w",
			r.SrcNode, r.SrcPath, r.DstNode, r.DstPath, cost, t, ErrRequestTimeout)
	}
	env.Ins.Emit("filem", "filem.copy", "%s:%s -> %s:%s (%d bytes, %v)", r.SrcNode, r.SrcPath, r.DstNode, r.DstPath, n, cost)
	env.Ins.Counter("ompi_filem_bytes_gathered_total").Add(n)
	env.Ins.Counter("ompi_filem_bytes_moved_total").Add(n)
	return Stats{Bytes: n, BytesMoved: n, Simulated: cost, Transfers: 1}, nil
}

// dedupCopy is the content-addressed incremental path: every source file
// is hashed on the source node; baseline hits are materialized by local
// copy inside the destination filesystem at storage-local cost, misses
// are transferred and charged at network cost. The resulting tree is
// byte-identical to a full copy.
func dedupCopy(env *Env, r Request, srcFS, dstFS vfs.FS) (Stats, error) {
	var st Stats
	injected := false
	if err := copyTreeDedup(env, r, srcFS, dstFS, r.SrcPath, r.DstPath, &st, &injected); err != nil {
		return Stats{Simulated: dedupQuote(env, r, st)},
			fmt.Errorf("filem: move %s:%s -> %s:%s: %w", r.SrcNode, r.SrcPath, r.DstNode, r.DstPath, err)
	}
	cost := dedupQuote(env, r, st)
	if st.BytesMoved > 0 {
		// Replace the network quote with the real transfer cost: this is
		// where link fault injection fires for the bytes that actually
		// crossed the network.
		cost -= env.quoteCost(r.SrcNode, r.DstNode, st.BytesMoved)
		net, err := env.transferCost(r.SrcNode, r.DstNode, st.BytesMoved)
		if err != nil {
			return Stats{Simulated: dedupQuote(env, r, st)}, err
		}
		cost += net
	}
	if t := env.Retry.Timeout; t > 0 && cost > t {
		return Stats{Simulated: t}, fmt.Errorf("filem: move %s:%s -> %s:%s: modeled transfer %v exceeds request timeout %v: %w",
			r.SrcNode, r.SrcPath, r.DstNode, r.DstPath, cost, t, ErrRequestTimeout)
	}
	st.Simulated = cost
	st.Transfers = 1
	env.Ins.Emit("filem", "filem.copy", "%s:%s -> %s:%s (%d bytes: %d moved, %d deduped, %v)",
		r.SrcNode, r.SrcPath, r.DstNode, r.DstPath, st.Bytes, st.BytesMoved, st.BytesDeduped, cost)
	env.Ins.Counter("ompi_filem_bytes_gathered_total").Add(st.Bytes)
	env.Ins.Counter("ompi_filem_bytes_moved_total").Add(st.BytesMoved)
	env.Ins.Counter("ompi_filem_bytes_deduped_total").Add(st.BytesDeduped)
	return st, nil
}

// dedupQuote is the pure modeled cost of an incremental copy's progress
// so far: scan time for the hashed bytes, storage-local time for the
// deduplicated bytes, network time for the moved bytes. No injection
// hooks fire.
func dedupQuote(env *Env, r Request, st Stats) time.Duration {
	var cost time.Duration
	if env.Topo != nil {
		if st.BytesHashed > 0 {
			cost += env.Topo.ScanTime(st.BytesHashed)
		}
		if st.BytesDeduped > 0 {
			cost += env.Topo.StorageLocalTime(st.BytesDeduped)
		}
	}
	if st.BytesMoved > 0 {
		cost += env.quoteCost(r.SrcNode, r.DstNode, st.BytesMoved)
	}
	return cost
}

// copyTreeDedup walks the source tree, deciding per file between a
// baseline materialization and a network transfer. The filem.transfer
// injection point fires once, before the first byte that would cross the
// network — a fully deduplicated request touches no link at all.
func copyTreeDedup(env *Env, r Request, srcFS, dstFS vfs.FS, src, dst string, st *Stats, injected *bool) error {
	info, err := srcFS.Stat(src)
	if err != nil {
		return err
	}
	if info.IsDir {
		if err := dstFS.MkdirAll(dst); err != nil {
			return err
		}
		entries, err := srcFS.ReadDir(src)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if err := copyTreeDedup(env, r, srcFS, dstFS, path.Join(src, e.Name), path.Join(dst, e.Name), st, injected); err != nil {
				return err
			}
		}
		return nil
	}
	data, err := srcFS.ReadFile(src)
	if err != nil {
		return err
	}
	n := int64(len(data))
	st.Bytes += n
	st.BytesHashed += n
	if prev, ok := r.Baseline.ByHash[vfs.HashBytes(data)]; ok {
		if err := vfs.CopyFile(dstFS, path.Join(r.Baseline.Dir, prev), dstFS, dst); err == nil {
			st.BytesDeduped += n
			env.Ins.Emit("filem", "filem.dedup.hit", "%s:%s (%d bytes from %s)", r.SrcNode, src, n, prev)
			return nil
		}
		// Baseline unreadable (pruned, damaged): fall back to a transfer.
	}
	if !*injected {
		if err := env.inject(fmt.Sprintf("filem.transfer:%s>%s", r.SrcNode, r.DstNode)); err != nil {
			return err
		}
		*injected = true
	}
	if err := dstFS.WriteFile(dst, data); err != nil {
		return err
	}
	st.BytesMoved += n
	env.Ins.Emit("filem", "filem.dedup.miss", "%s:%s (%d bytes)", r.SrcNode, src, n)
	return nil
}

// cleanupPartial removes whatever a failed copy left at the destination
// so a retry (or the caller's rollback) starts from a clean slate.
// Best-effort: a missing destination is the common, silent case.
func cleanupPartial(env *Env, r Request) {
	dstFS, err := env.fs(r.DstNode)
	if err != nil {
		return
	}
	if err := dstFS.Remove(r.DstPath); err == nil {
		env.Ins.Emit("filem", "filem.cleanup", "removed partial %s:%s", r.DstNode, r.DstPath)
	}
}

// copyWithRetry runs one request under the environment's retry policy:
// failed attempts clean up their partial destination and back off
// exponentially. All retry overhead — backoffs plus the modeled time the
// failed attempts consumed — is folded into the returned Stats.Simulated
// (also on failure) instead of being charged to the shared clock here:
// the component's Move owns the charge, so overlapped streams' backoffs
// are not serialized onto the clock. Deterministic failures — a request
// that would exceed its modeled timeout on every attempt — are not
// retried.
func copyWithRetry(env *Env, r Request) (Stats, error) {
	pol := env.Retry
	backoff := pol.Backoff
	var overhead time.Duration
	var lastErr error
	for attempt := 0; attempt <= pol.Max; attempt++ {
		if attempt > 0 {
			overhead += backoff
			env.Ins.Counter("ompi_filem_retries_total").Inc()
			env.Ins.Emit("filem", "filem.retry", "attempt %d/%d %s:%s -> %s:%s (backoff %v): %v",
				attempt+1, pol.Max+1, r.SrcNode, r.SrcPath, r.DstNode, r.DstPath, backoff, lastErr)
			backoff = time.Duration(float64(backoff) * pol.multiplier())
		}
		st, err := copyOne(env, r)
		if err == nil {
			st.Simulated += overhead
			return st, nil
		}
		overhead += st.Simulated // time the failed attempt still consumed
		lastErr = err
		cleanupPartial(env, r)
		if errors.Is(err, ErrRequestTimeout) {
			break // the modeled cost will not change; retrying is futile
		}
	}
	return Stats{Simulated: overhead}, fmt.Errorf("filem: giving up on %s:%s -> %s:%s after %d attempt(s): %w",
		r.SrcNode, r.SrcPath, r.DstNode, r.DstPath, env.Retry.Max+1, lastErr)
}

// rollback removes the destinations of already-completed requests after
// a grouped Move failed partway: a failed gather must leave stable
// storage (and any other destination) as clean as if it never started.
func rollback(env *Env, done []Request) {
	for _, r := range done {
		dstFS, err := env.fs(r.DstNode)
		if err != nil {
			continue
		}
		if err := dstFS.Remove(r.DstPath); err == nil {
			env.Ins.Emit("filem", "filem.rollback", "removed %s:%s", r.DstNode, r.DstPath)
		}
	}
}

// removeOn removes paths on one node's filesystem, retrying transient
// failures under the environment's policy. A nonexistent path fails
// immediately (matching `rm` without -f): retrying cannot create it.
func removeOn(env *Env, node string, paths []string) error {
	fsys, err := env.fs(node)
	if err != nil {
		return err
	}
	pol := env.Retry
	for _, p := range paths {
		backoff := pol.Backoff
		var lastErr error
		for attempt := 0; attempt <= pol.Max; attempt++ {
			if attempt > 0 {
				env.charge(backoff)
				backoff = time.Duration(float64(backoff) * pol.multiplier())
			}
			err := env.inject("filem.remove:" + node)
			if err == nil {
				err = fsys.Remove(p)
			}
			if err == nil {
				lastErr = nil
				break
			}
			if errors.Is(err, vfs.ErrNotExist) {
				return fmt.Errorf("filem: remove %s:%s: %w", node, p, err)
			}
			lastErr = err
		}
		if lastErr != nil {
			return fmt.Errorf("filem: remove %s:%s: %w", node, p, lastErr)
		}
		env.Ins.Emit("filem", "filem.remove", "%s:%s", node, p)
	}
	return nil
}

// RSH models the paper's first FILEM component: RSH/SSH remote execution
// and copy commands issued one after another. Every request is executed
// and charged sequentially.
type RSH struct{}

// Name implements mca.Component.
func (*RSH) Name() string { return "rsh" }

// Priority implements mca.Component; rsh is the paper's default.
func (*RSH) Priority() int { return 20 }

// Move implements Component with strictly sequential transfers. A
// failure (after retries) rolls back the requests that already landed,
// so a partially-failed grouped move leaves no half-gathered debris. The
// clock is charged once, for the whole schedule — on failure that is the
// completed requests plus the time the failed one consumed before giving
// up.
func (*RSH) Move(env *Env, reqs []Request) (Stats, error) {
	var total Stats
	var done []Request
	for _, r := range reqs {
		st, err := copyWithRetry(env, r)
		if err != nil {
			env.charge(total.Simulated + st.Simulated)
			rollback(env, done)
			return total, err
		}
		done = append(done, r)
		total = total.add(st)
	}
	env.charge(total.Simulated)
	return total, nil
}

// Remove implements Component.
func (*RSH) Remove(env *Env, node string, paths []string) error {
	return removeOn(env, node, paths)
}

var _ Component = (*RSH)(nil)

// Raw is the grouped component: all requests are issued together, so
// transfers from distinct nodes overlap and only the shared
// stable-storage ingress serializes them. The charged time is the
// grouped-gather model from netsim: max(slowest stream, ingress bound).
type Raw struct{}

// Name implements mca.Component.
func (*Raw) Name() string { return "raw" }

// Priority implements mca.Component.
func (*Raw) Priority() int { return 10 }

// Move implements Component with overlapped transfers. If any stream
// fails (after retries), the streams that completed are rolled back so
// the grouped move is all-or-nothing. Each stream's retry backoffs and
// failed-attempt time stay inside its own perStream duration: overlapped
// backoffs overlap, exactly like the transfers themselves, and the clock
// is charged once with the grouped cost of the whole schedule (also on
// failure, for the time the attempt consumed).
func (*Raw) Move(env *Env, reqs []Request) (Stats, error) {
	var (
		mu       sync.Mutex
		total    Stats
		firstErr error
		wg       sync.WaitGroup
	)
	perStream := make([]time.Duration, len(reqs))
	completed := make([]bool, len(reqs))
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r Request) {
			defer wg.Done()
			st, err := copyWithRetry(env, r)
			mu.Lock()
			defer mu.Unlock()
			perStream[i] = st.Simulated
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			completed[i] = true
			total.Bytes += st.Bytes
			total.BytesMoved += st.BytesMoved
			total.BytesDeduped += st.BytesDeduped
			total.BytesHashed += st.BytesHashed
			total.Transfers += st.Transfers
		}(i, r)
	}
	wg.Wait()
	if firstErr != nil {
		env.charge(groupedCost(env, reqs, perStream, total.BytesMoved))
		var done []Request
		for i, ok := range completed {
			if ok {
				done = append(done, reqs[i])
			}
		}
		rollback(env, done)
		return total, firstErr
	}
	total.Simulated = groupedCost(env, reqs, perStream, total.BytesMoved)
	env.charge(total.Simulated)
	return total, nil
}

// groupedCost computes the modeled duration of the overlapped schedule:
// the slowest individual stream, floored by the stable-storage ingress
// serialization bound when storage is involved. Only bytes that actually
// crossed the network (movedBytes) contend on the ingress link —
// deduplicated bytes never leave stable storage.
func groupedCost(env *Env, reqs []Request, perStream []time.Duration, movedBytes int64) time.Duration {
	var max time.Duration
	for _, d := range perStream {
		if d > max {
			max = d
		}
	}
	if env.Topo == nil {
		return max
	}
	touchesStorage := false
	for _, r := range reqs {
		if r.SrcNode == StableNode || r.DstNode == StableNode {
			touchesStorage = true
			break
		}
	}
	if touchesStorage {
		if bound := env.Topo.Ingress().TransferTime(movedBytes); bound > max {
			return bound
		}
	}
	return max
}

// Remove implements Component.
func (*Raw) Remove(env *Env, node string, paths []string) error {
	return removeOn(env, node, paths)
}

var _ Component = (*Raw)(nil)

// ListTree returns the sorted relative file paths under root on node,
// a helper the snapshot coordinator uses to validate gathers.
func ListTree(env *Env, node, root string) ([]string, error) {
	fsys, err := env.fs(node)
	if err != nil {
		return nil, err
	}
	var out []string
	err = vfs.Walk(fsys, root, func(name string, _ vfs.FileInfo) error {
		rel := name
		if root != "." && len(name) > len(root) {
			rel = name[len(root)+1:]
		}
		out = append(out, path.Clean(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}
