package filem

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/netsim"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// testEnv builds an Env with n compute nodes plus stable storage, all
// in-memory, on a default topology.
func testEnv(n int) (*Env, map[string]*vfs.Mem) {
	stores := map[string]*vfs.Mem{StableNode: vfs.NewMem()}
	topo := netsim.NewTopology(netsim.DefaultIngress)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("n%d", i)
		stores[name] = vfs.NewMem()
		topo.AddNode(name, netsim.DefaultUplink)
	}
	env := &Env{
		Resolve: func(node string) (vfs.FS, error) {
			fsys, ok := stores[node]
			if !ok {
				return nil, fmt.Errorf("no such node")
			}
			return fsys, nil
		},
		Topo:  topo,
		Clock: &netsim.Clock{},
		Ins:   trace.New(),
	}
	return env, stores
}

func components() map[string]Component {
	return map[string]Component{"rsh": &RSH{}, "raw": &Raw{}}
}

func TestFrameworkDefaults(t *testing.T) {
	f := NewFramework()
	c, err := f.Select(nil)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if c.Name() != "rsh" {
		t.Errorf("default = %q, want rsh (the paper's first component)", c.Name())
	}
	if got, want := f.Names(), []string{"raw", "rsh"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Names = %v, want %v", got, want)
	}
}

func TestGatherMovesSnapshotsToStableStorage(t *testing.T) {
	for name, comp := range components() {
		t.Run(name, func(t *testing.T) {
			env, stores := testEnv(2)
			// Each node holds one local snapshot directory.
			if err := stores["n0"].WriteFile("tmp/opal_snapshot_0.ckpt/image.bin", []byte("rank0")); err != nil {
				t.Fatal(err)
			}
			if err := stores["n1"].WriteFile("tmp/opal_snapshot_1.ckpt/image.bin", []byte("rank1!")); err != nil {
				t.Fatal(err)
			}
			reqs := []Request{
				{SrcNode: "n0", SrcPath: "tmp/opal_snapshot_0.ckpt", DstNode: StableNode, DstPath: "g/0/opal_snapshot_0.ckpt"},
				{SrcNode: "n1", SrcPath: "tmp/opal_snapshot_1.ckpt", DstNode: StableNode, DstPath: "g/0/opal_snapshot_1.ckpt"},
			}
			st, err := comp.Move(env, reqs)
			if err != nil {
				t.Fatalf("Move: %v", err)
			}
			if st.Bytes != int64(len("rank0")+len("rank1!")) {
				t.Errorf("Bytes = %d", st.Bytes)
			}
			if st.Transfers != 2 {
				t.Errorf("Transfers = %d, want 2", st.Transfers)
			}
			if st.Simulated <= 0 {
				t.Errorf("Simulated = %v, want > 0", st.Simulated)
			}
			if env.Clock.Elapsed() != st.Simulated {
				t.Errorf("clock %v != stats %v", env.Clock.Elapsed(), st.Simulated)
			}
			got, err := stores[StableNode].ReadFile("g/0/opal_snapshot_1.ckpt/image.bin")
			if err != nil {
				t.Fatalf("stable read: %v", err)
			}
			if string(got) != "rank1!" {
				t.Errorf("stable content = %q", got)
			}
		})
	}
}

func TestBroadcastPreloadsAllNodes(t *testing.T) {
	for name, comp := range components() {
		t.Run(name, func(t *testing.T) {
			env, stores := testEnv(3)
			if err := stores[StableNode].WriteFile("g/0/opal_snapshot_2.ckpt/image.bin", []byte("img")); err != nil {
				t.Fatal(err)
			}
			st, err := Broadcast(comp, env, StableNode, "g/0/opal_snapshot_2.ckpt",
				[]string{"n0", "n1", "n2"}, "restart/opal_snapshot_2.ckpt")
			if err != nil {
				t.Fatalf("Broadcast: %v", err)
			}
			if st.Transfers != 3 {
				t.Errorf("Transfers = %d, want 3", st.Transfers)
			}
			for _, n := range []string{"n0", "n1", "n2"} {
				if !vfs.Exists(stores[n], "restart/opal_snapshot_2.ckpt/image.bin") {
					t.Errorf("node %s missing preloaded snapshot", n)
				}
			}
		})
	}
}

func TestRemove(t *testing.T) {
	for name, comp := range components() {
		t.Run(name, func(t *testing.T) {
			env, stores := testEnv(1)
			if err := stores["n0"].WriteFile("tmp/ckpt/image.bin", []byte("x")); err != nil {
				t.Fatal(err)
			}
			if err := comp.Remove(env, "n0", []string{"tmp/ckpt"}); err != nil {
				t.Fatalf("Remove: %v", err)
			}
			if vfs.Exists(stores["n0"], "tmp/ckpt") {
				t.Error("tree survived Remove")
			}
			if err := comp.Remove(env, "n0", []string{"tmp/ckpt"}); err == nil {
				t.Error("Remove of missing path succeeded")
			}
		})
	}
}

func TestMoveErrors(t *testing.T) {
	for name, comp := range components() {
		t.Run(name, func(t *testing.T) {
			env, _ := testEnv(1)
			// Unknown source node.
			_, err := comp.Move(env, []Request{{SrcNode: "ghost", SrcPath: "x", DstNode: "n0", DstPath: "y"}})
			if !errors.Is(err, ErrUnknownNode) {
				t.Errorf("unknown node err = %v", err)
			}
			// Missing source path.
			_, err = comp.Move(env, []Request{{SrcNode: "n0", SrcPath: "missing", DstNode: StableNode, DstPath: "y"}})
			if err == nil {
				t.Error("Move of missing path succeeded")
			}
		})
	}
}

// TestRawNeverChargesMoreThanRSH is the A3 ablation invariant: grouped
// transfers can never be modeled slower than sequential ones for the
// same request list.
func TestRawNeverChargesMoreThanRSH(t *testing.T) {
	prop := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 8 {
			sizes = sizes[:8]
		}
		mkEnv := func() *Env {
			env, stores := testEnv(len(sizes))
			for i, s := range sizes {
				node := fmt.Sprintf("n%d", i)
				data := make([]byte, int(s))
				if err := stores[node].WriteFile("snap/img", data); err != nil {
					return nil
				}
			}
			return env
		}
		var reqs []Request
		for i := range sizes {
			node := fmt.Sprintf("n%d", i)
			reqs = append(reqs, Request{SrcNode: node, SrcPath: "snap", DstNode: StableNode, DstPath: "g/" + node})
		}
		envSeq := mkEnv()
		envGrp := mkEnv()
		if envSeq == nil || envGrp == nil {
			return false
		}
		seqStats, err1 := (&RSH{}).Move(envSeq, reqs)
		grpStats, err2 := (&Raw{}).Move(envGrp, reqs)
		if err1 != nil || err2 != nil {
			return false
		}
		return grpStats.Simulated <= seqStats.Simulated && grpStats.Bytes == seqStats.Bytes
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestListTree(t *testing.T) {
	env, stores := testEnv(1)
	for _, f := range []string{"snap/meta.json", "snap/image.bin", "snap/aux/x"} {
		if err := stores["n0"].WriteFile(f, []byte("d")); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ListTree(env, "n0", "snap")
	if err != nil {
		t.Fatalf("ListTree: %v", err)
	}
	want := []string{"aux/x", "image.bin", "meta.json"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ListTree = %v, want %v", got, want)
	}
}

func TestNoTopologyMeansFreeTransfers(t *testing.T) {
	env, stores := testEnv(1)
	env.Topo = nil
	if err := stores["n0"].WriteFile("f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	st, err := (&RSH{}).Move(env, []Request{{SrcNode: "n0", SrcPath: "f", DstNode: StableNode, DstPath: "f"}})
	if err != nil {
		t.Fatalf("Move: %v", err)
	}
	if st.Simulated != 0 {
		t.Errorf("Simulated = %v, want 0 without a topology", st.Simulated)
	}
}

func TestTraceEventsEmitted(t *testing.T) {
	env, stores := testEnv(1)
	if err := stores["n0"].WriteFile("f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if _, err := (&RSH{}).Move(env, []Request{{SrcNode: "n0", SrcPath: "f", DstNode: StableNode, DstPath: "f"}}); err != nil {
		t.Fatal(err)
	}
	if env.Ins.Log.Count("filem.copy") != 1 {
		t.Errorf("filem.copy events = %d, want 1", env.Ins.Log.Count("filem.copy"))
	}
}
