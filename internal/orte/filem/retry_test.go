package filem

import (
	"errors"
	"testing"
	"time"

	"repro/internal/faultsim"
	"repro/internal/vfs"
)

// withFaults arms env with a seeded injector and a fail-fast-by-default
// retry policy the individual tests override.
func withFaults(env *Env, rules ...faultsim.Rule) *faultsim.Injector {
	inj := faultsim.New(11, rules...)
	env.Inject = inj.Fire
	return inj
}

func TestTransferRetriesThenSucceeds(t *testing.T) {
	for name, comp := range components() {
		t.Run(name, func(t *testing.T) {
			env, stores := testEnv(1)
			env.Retry = RetryPolicy{Max: 3, Backoff: time.Millisecond}
			// The first two attempts fail, the third lands.
			inj := withFaults(env, faultsim.Rule{Point: "filem.transfer", Prob: 1, Times: 2})
			if err := stores["n0"].WriteFile("snap/img", []byte("payload")); err != nil {
				t.Fatal(err)
			}
			before := env.Clock.Elapsed()
			st, err := comp.Move(env, []Request{{SrcNode: "n0", SrcPath: "snap", DstNode: StableNode, DstPath: "g/snap"}})
			if err != nil {
				t.Fatalf("Move under transient faults: %v", err)
			}
			if st.Transfers != 1 {
				t.Errorf("Transfers = %d, want 1", st.Transfers)
			}
			if got, _ := stores[StableNode].ReadFile("g/snap/img"); string(got) != "payload" {
				t.Errorf("stable content = %q", got)
			}
			if n := env.Ins.Log.Count("filem.retry"); n != 2 {
				t.Errorf("filem.retry events = %d, want 2", n)
			}
			// Exponential backoff (1ms + 2ms) is folded into the stream's
			// reported time, and the clock is charged exactly once with it —
			// not separately per retry.
			if st.Simulated < 3*time.Millisecond {
				t.Errorf("Simulated = %v, want >= 3ms of folded backoff", st.Simulated)
			}
			if charged := env.Clock.Elapsed() - before; charged != st.Simulated {
				t.Errorf("clock charged %v, want exactly Stats.Simulated %v", charged, st.Simulated)
			}
			if inj.Fired("filem.transfer") != 2 {
				t.Errorf("injector fired %d times, want 2", inj.Fired("filem.transfer"))
			}
		})
	}
}

func TestExhaustedRetriesFailAndAreMarked(t *testing.T) {
	for name, comp := range components() {
		t.Run(name, func(t *testing.T) {
			env, stores := testEnv(1)
			env.Retry = RetryPolicy{Max: 2, Backoff: time.Microsecond}
			inj := withFaults(env, faultsim.Rule{Point: "filem.transfer", Prob: 1})
			if err := stores["n0"].WriteFile("snap/img", []byte("payload")); err != nil {
				t.Fatal(err)
			}
			_, err := comp.Move(env, []Request{{SrcNode: "n0", SrcPath: "snap", DstNode: StableNode, DstPath: "g/snap"}})
			if !errors.Is(err, faultsim.ErrInjected) {
				t.Fatalf("Move = %v, want wrapped ErrInjected", err)
			}
			if got := inj.Ops("filem.transfer"); got != 3 {
				t.Errorf("attempts = %d, want 3 (1 + 2 retries)", got)
			}
			if vfs.Exists(stores[StableNode], "g/snap") {
				t.Error("failed move left debris on stable storage")
			}
		})
	}
}

func TestPartialCopyIsCleanedBeforeRetry(t *testing.T) {
	env, stores := testEnv(1)
	env.Retry = RetryPolicy{Max: 2, Backoff: time.Microsecond}
	// Fault the destination filesystem, not the transfer request: the
	// second write of the tree copy fails, leaving a partial destination
	// that the retry machinery must clean up before attempt two.
	inj := faultsim.New(3, faultsim.Rule{Point: "vfs.write:stable", After: 1, Times: 1})
	wrapped := faultsim.WrapFS(stores[StableNode], inj, "stable")
	inner := env.Resolve
	env.Resolve = func(node string) (vfs.FS, error) {
		if node == StableNode {
			return wrapped, nil
		}
		return inner(node)
	}
	for _, f := range []string{"snap/a", "snap/b", "snap/c"} {
		if err := stores["n0"].WriteFile(f, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	st, err := (&RSH{}).Move(env, []Request{{SrcNode: "n0", SrcPath: "snap", DstNode: StableNode, DstPath: "g/snap"}})
	if err != nil {
		t.Fatalf("Move: %v", err)
	}
	if st.Transfers != 1 {
		t.Errorf("Transfers = %d, want 1", st.Transfers)
	}
	if env.Ins.Log.Count("filem.cleanup") != 1 {
		t.Errorf("filem.cleanup events = %d, want 1", env.Ins.Log.Count("filem.cleanup"))
	}
	for _, f := range []string{"g/snap/a", "g/snap/b", "g/snap/c"} {
		if !vfs.Exists(stores[StableNode], f) {
			t.Errorf("missing %s after retried copy", f)
		}
	}
}

func TestGroupedMoveRollsBackOnPartialFailure(t *testing.T) {
	for name, comp := range components() {
		t.Run(name, func(t *testing.T) {
			env, stores := testEnv(2)
			env.Retry = RetryPolicy{Max: 1, Backoff: time.Microsecond}
			// Transfers out of n1 always fail; n0's succeed and must be
			// rolled back so the gather is all-or-nothing.
			withFaults(env, faultsim.Rule{Point: "filem.transfer:n1", Prob: 1})
			if err := stores["n0"].WriteFile("snap/img", []byte("r0")); err != nil {
				t.Fatal(err)
			}
			if err := stores["n1"].WriteFile("snap/img", []byte("r1")); err != nil {
				t.Fatal(err)
			}
			reqs := []Request{
				{SrcNode: "n0", SrcPath: "snap", DstNode: StableNode, DstPath: "g/0/s0"},
				{SrcNode: "n1", SrcPath: "snap", DstNode: StableNode, DstPath: "g/0/s1"},
			}
			if _, err := comp.Move(env, reqs); err == nil {
				t.Fatal("grouped Move with a dead stream succeeded")
			}
			for _, p := range []string{"g/0/s0", "g/0/s1"} {
				if vfs.Exists(stores[StableNode], p) {
					t.Errorf("rollback left %s on stable storage", p)
				}
			}
		})
	}
}

func TestRequestTimeoutIsNotRetried(t *testing.T) {
	env, stores := testEnv(1)
	// A deterministic over-budget transfer: retrying cannot change the
	// modeled cost, so only one attempt is made even with retries allowed.
	env.Retry = RetryPolicy{Max: 5, Backoff: time.Microsecond, Timeout: time.Nanosecond}
	if err := stores["n0"].WriteFile("snap/img", make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	_, err := (&RSH{}).Move(env, []Request{{SrcNode: "n0", SrcPath: "snap", DstNode: StableNode, DstPath: "g/snap"}})
	if !errors.Is(err, ErrRequestTimeout) {
		t.Fatalf("Move = %v, want ErrRequestTimeout", err)
	}
	if n := env.Ins.Log.Count("filem.retry"); n != 0 {
		t.Errorf("timed-out request was retried %d times", n)
	}
	if vfs.Exists(stores[StableNode], "g/snap") {
		t.Error("timed-out move left debris on stable storage")
	}
}

func TestRemoveRetriesTransientFailures(t *testing.T) {
	env, stores := testEnv(1)
	env.Retry = RetryPolicy{Max: 2, Backoff: time.Microsecond}
	withFaults(env, faultsim.Rule{Point: "filem.remove:n0", Prob: 1, Times: 1})
	if err := stores["n0"].WriteFile("tmp/ckpt/img", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := (&RSH{}).Remove(env, "n0", []string{"tmp/ckpt"}); err != nil {
		t.Fatalf("Remove under transient fault: %v", err)
	}
	if vfs.Exists(stores["n0"], "tmp/ckpt") {
		t.Error("tree survived retried Remove")
	}

	// With retries disabled the same fault is fatal.
	env2, stores2 := testEnv(1)
	withFaults(env2, faultsim.Rule{Point: "filem.remove:n0", Prob: 1, Times: 1})
	if err := stores2["n0"].WriteFile("tmp/ckpt/img", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := (&RSH{}).Remove(env2, "n0", []string{"tmp/ckpt"}); !errors.Is(err, faultsim.ErrInjected) {
		t.Fatalf("Remove without retries = %v, want ErrInjected", err)
	}
}
