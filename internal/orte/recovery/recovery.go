// Package recovery is the policy half of in-job rank recovery and live
// migration: the coordinator the runtime hands a frozen job to when the
// HNP's failure detector declares a node dead (or an operator requests a
// planned move). It picks replacement nodes, restores only the lost
// ranks from the best available source — intact node-local stage, then
// replica on a surviving node, then the primary on stable storage —
// respawns them through the job's launch stack, and re-knits the job:
// every rank rolls back to the same committed interval, reports its
// restored CRCP channel bookmarks, and resumes only after the pairwise
// sent/received counts verify. Recovery is itself crash-safe: failures
// attributable to the chosen replacement node retry with an alternate,
// and anything unrecoverable (quorum loss, a second node death
// mid-session, verification failure) aborts the session so the
// supervisor falls back to the paper's whole-job restart.
package recovery

import (
	"errors"
	"fmt"
	"path"
	"sync"
	"time"

	"repro/internal/core/snapshot"
	"repro/internal/ompi"
	"repro/internal/ompi/btl"
	"repro/internal/ompi/crcp"
	"repro/internal/orte/filem"
	"repro/internal/orte/names"
	"repro/internal/orte/runtime"
	"repro/internal/orte/snapc"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// Stats summarizes a coordinator's lifetime activity; Supervise folds it
// into its report.
type Stats struct {
	// Sessions counts recovery sessions started (failures + migrations).
	Sessions int
	// RecoveredRanks counts lost ranks successfully respawned in-job.
	RecoveredRanks int
	// Retries counts session attempts abandoned for an alternate
	// replacement node.
	Retries int
	// Fallbacks counts sessions that aborted into whole-job restart.
	Fallbacks int
	// Migrations counts completed planned single-rank moves.
	Migrations int
	// RestoredBytes is the payload staged over FILEM across all
	// sessions (in-place local restores contribute zero).
	RestoredBytes int64
}

// Coordinator drives in-job recovery sessions for jobs on one cluster.
// Attach it with Job.SetRecoveryHandler; it is safe for concurrent use
// across jobs (sessions for distinct jobs are independent).
type Coordinator struct {
	cluster *runtime.Cluster
	ins     *trace.Instrumentation

	mu    sync.Mutex
	stats Stats
}

// New builds a coordinator for the cluster.
func New(c *runtime.Cluster) *Coordinator {
	return &Coordinator{cluster: c, ins: c.Ins()}
}

// Stats returns a snapshot of the coordinator's counters.
func (co *Coordinator) Stats() Stats {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.stats
}

// stageError marks a failure attributable to a replacement node, the
// retryable class: the next attempt excludes the node and picks another.
type stageError struct {
	node string
	err  error
}

func (e *stageError) Error() string { return fmt.Sprintf("replacement node %q: %v", e.node, e.err) }
func (e *stageError) Unwrap() error { return e.err }

// rankPlan is one rank's recovery assignment: where it runs, what it
// restores from, and how the restore is labeled in the per-rank view.
type rankPlan struct {
	rank    int
	node    string
	restore *ompi.RestoreSpec
	source  string // "local", "replica:<node>", "stable"
	inPlace bool   // restore directly from the sealed local stage
	bytes   int64  // payload staged over FILEM (0 for in-place)
}

// HandleFailure implements runtime.RecoveryHandler: the runtime has
// frozen the job (survivors parked, lost epochs bumped, fabric closed)
// and this goroutine owns the session until CompleteRecovery or
// AbortRecovery.
func (co *Coordinator) HandleFailure(j *runtime.Job, node string, lost []int, detectedAt time.Time) {
	s := j.Recovery()
	if s == nil {
		// A second node death aborted the session before this goroutine
		// started: the runtime already tore it down and the parked ranks
		// are failing out. Record the session and the fallback so the
		// report explains why the whole-job ladder ran.
		co.mu.Lock()
		co.stats.Sessions++
		co.mu.Unlock()
		co.ins.Counter("ompi_recovery_sessions_total").Inc()
		co.fallback(j, fmt.Errorf("recovery: session for node %q aborted before coordination began", node))
		return
	}
	co.mu.Lock()
	co.stats.Sessions++
	co.mu.Unlock()
	co.ins.Counter("ompi_recovery_sessions_total").Inc()
	co.ins.Counter("ompi_recovery_detect_ns_total").Add(time.Since(detectedAt).Nanoseconds())

	// Fault point: the HNP dies just as recovery coordination begins.
	// The frozen session is left stranded — survivors parked, no orders
	// coming — until Reattach aborts it into the whole-job fallback.
	if ierr := co.cluster.Faults().Fire("hnp.crash:recovery"); ierr != nil {
		co.ins.Emit("recovery", "hnp.crash", "injected mid-recovery: %v", ierr)
		_ = co.cluster.CrashHNP(fmt.Errorf("recovery session for node %q: %w", node, ierr))
		return
	}

	sp := co.ins.Span("recovery.session", trace.WithSource("recovery"))
	err := co.runAttempts(j, s, map[string]bool{node: true}, nil)
	sp.End(err)
	if err != nil {
		co.fallback(j, err)
		return
	}
	co.mu.Lock()
	co.stats.RecoveredRanks += len(lost)
	co.mu.Unlock()
	co.ins.Counter("ompi_recovery_recovered_ranks_total").Add(int64(len(lost)))
}

// HandleMigration implements runtime.RecoveryHandler: a planned move of
// one rank to target. The caller (Cluster.MigrateRank) has already
// captured a KeepLocal checkpoint, so survivors roll back in place from
// their sealed local stages — a near no-op — while the migrating rank's
// state travels to the target node.
func (co *Coordinator) HandleMigration(j *runtime.Job, rank int, target string) error {
	s, err := j.BeginMigration(rank)
	if err != nil {
		return err
	}
	co.mu.Lock()
	co.stats.Sessions++
	co.mu.Unlock()
	co.ins.Counter("ompi_recovery_sessions_total").Inc()

	sp := co.ins.Span("recovery.migrate", trace.WithSource("recovery"), trace.WithRank(rank))
	err = co.runAttempts(j, s, nil, map[int]string{rank: target})
	sp.End(err)
	if err != nil {
		co.fallback(j, err)
		return fmt.Errorf("recovery: migrate rank %d to %q: %w", rank, target, err)
	}
	co.mu.Lock()
	co.stats.Migrations++
	co.mu.Unlock()
	co.ins.Counter("ompi_recovery_migrations_total").Inc()
	return nil
}

// fallback aborts the session so the parked ranks die and the job's
// supervisor (if any) runs a whole-job restart.
func (co *Coordinator) fallback(j *runtime.Job, cause error) {
	co.mu.Lock()
	co.stats.Fallbacks++
	co.mu.Unlock()
	co.ins.Counter("ompi_recovery_fallbacks_total").Inc()
	j.AbortRecovery(fmt.Errorf("recovery: falling back to whole-job restart: %w", cause))
}

// runAttempts drives the retry ladder: a failure attributable to the
// chosen replacement node (staging to it, respawning on it) excludes the
// node and tries again; anything else — quorum loss, no valid interval,
// verification failure, external abort — is final.
func (co *Coordinator) runAttempts(j *runtime.Job, s *runtime.RecoverySession, exclude map[string]bool, forced map[int]string) error {
	if exclude == nil {
		exclude = make(map[string]bool)
	}
	attempts := j.Params().Int("recovery_max_attempts", 2)
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			co.mu.Lock()
			co.stats.Retries++
			co.mu.Unlock()
			co.ins.Counter("ompi_recovery_retries_total").Inc()
			co.ins.Emit("recovery", "recovery.retry",
				"job %d attempt %d/%d (excluding %d nodes)", j.JobID(), attempt+1, attempts, len(exclude))
		}
		err = co.runSession(j, s, attempt, exclude, forced)
		if err == nil {
			return nil
		}
		var se *stageError
		if !errors.As(err, &se) {
			return err
		}
		if forced != nil {
			return err // a forced migration target has no alternate
		}
		exclude[se.node] = true
	}
	return err
}

// runSession executes one recovery attempt end to end: settle the
// drain queue, resolve the recovery frontier, stage per-rank restore
// sources, respawn lost ranks on a rebuilt fabric, deliver recovery
// orders, and verify the re-knit before releasing anyone.
func (co *Coordinator) runSession(j *runtime.Job, s *runtime.RecoverySession, attempt int, exclude map[string]bool, forced map[int]string) error {
	c := co.cluster
	np := j.NumProcs()
	lost := s.Lost()
	lostSet := make(map[int]bool, len(lost))
	for _, r := range lost {
		lostSet[r] = true
	}

	// ---- resolve: find the frontier and plan every rank's source -------
	resolveSp := co.ins.Span("recovery.resolve", trace.WithSource("recovery"))
	start := time.Now()

	// Quorum rule: recovering in-job only makes sense while a clear
	// majority of ranks survive; below that, whole-job restart from
	// stable storage is the honest answer.
	quorumPct := j.Params().Int("recovery_quorum_pct", 50)
	if !s.Planned() && (np-len(lost))*100 <= quorumPct*np {
		err := fmt.Errorf("recovery: only %d/%d ranks survive (quorum %d%%)", np-len(lost), np, quorumPct)
		resolveSp.End(err)
		return err
	}

	// Settle the journal first: an interval caught mid-drain by the
	// failure either finishes committing from intact local stages or is
	// discarded — the resolver must only ever see a consistent lineage.
	c.FlushDrains()
	if _, err := c.RecoverDrains(j.GlobalDir()); err != nil {
		co.ins.Emit("recovery", "recovery.drain-recover-error", "job %d: %v", j.JobID(), err)
	}

	ref := snapshot.GlobalRef{FS: c.Stable(), Dir: j.GlobalDir()}
	resolver := &snapshot.Resolver{Ref: ref, Nodes: c.AliveNodes(), NodeFS: c.NodeFS, Ins: co.ins}
	interval, meta, cp, err := resolver.LatestValid()
	if err != nil {
		resolveSp.End(err)
		return fmt.Errorf("recovery: no recovery frontier: %w", err)
	}

	placement := j.Placement()
	plans, err := co.buildPlans(j, meta, interval, cp, placement, lostSet, forced, exclude)
	if err == nil {
		err = co.stagePlans(j, s, attempt, interval, plans)
	}
	co.ins.Counter("ompi_recovery_resolve_ns_total").Add(time.Since(start).Nanoseconds())
	resolveSp.End(err)
	if err != nil {
		return err
	}

	rv := newRendezvous(np)

	// ---- respawn: rebuild the fabric, relaunch lost ranks --------------
	respawnSp := co.ins.Span("recovery.respawn", trace.WithSource("recovery"), trace.WithInterval(interval))
	start = time.Now()
	fab, ports, err := co.respawn(j, s, rv, plans, lostSet)
	co.ins.Counter("ompi_recovery_respawn_ns_total").Add(time.Since(start).Nanoseconds())
	respawnSp.End(err)
	if err != nil {
		if fab != nil {
			fab.Close()
		}
		return err
	}

	// ---- reknit: deliver orders, collect reports, verify, release ------
	reknitSp := co.ins.Span("recovery.reknit", trace.WithSource("recovery"), trace.WithInterval(interval))
	start = time.Now()
	err = co.reknit(j, s, rv, plans, lostSet, interval, fab, ports)
	co.ins.Counter("ompi_recovery_reknit_ns_total").Add(time.Since(start).Nanoseconds())
	reknitSp.End(err)
	if err != nil {
		fab.Close()
		return err
	}
	return nil
}

// buildPlans assigns every rank a node and a restore source at the
// recovery frontier, walking the ladder: sealed local stage in place,
// else a replica on a surviving node, else the primary on stable
// storage (or, when the primary itself failed verification, the intact
// copy the resolver found).
func (co *Coordinator) buildPlans(j *runtime.Job, meta snapshot.GlobalMeta, interval int, cp snapshot.Copy, placement map[int]string, lostSet map[int]bool, forced map[int]string, exclude map[string]bool) ([]rankPlan, error) {
	np := j.NumProcs()
	procs := make(map[int]snapshot.ProcEntry, len(meta.Procs))
	for _, pe := range meta.Procs {
		procs[pe.Vpid] = pe
	}
	// Current per-node rank counts, so replacements spread across free slots.
	load := make(map[string]int)
	for r := 0; r < np; r++ {
		if !lostSet[r] {
			load[placement[r]]++
		}
	}

	plans := make([]rankPlan, 0, np)
	for r := 0; r < np; r++ {
		pe, ok := procs[r]
		if !ok {
			return nil, fmt.Errorf("recovery: interval %d metadata has no entry for rank %d", interval, r)
		}
		node := placement[r]
		if lostSet[r] {
			if forced != nil && forced[r] != "" {
				node = forced[r]
			} else {
				var err error
				node, err = co.pickReplacement(load, exclude)
				if err != nil {
					return nil, err
				}
			}
			load[node]++
		}
		plan, err := co.planSource(j, meta, interval, cp, pe, r, node)
		if err != nil {
			return nil, err
		}
		plans = append(plans, plan)
	}
	return plans, nil
}

// pickReplacement chooses the alive, non-excluded node with the most
// free slots (least loaded when everything is full).
func (co *Coordinator) pickReplacement(load map[string]int, exclude map[string]bool) (string, error) {
	alive := make(map[string]bool)
	for _, n := range co.cluster.AliveNodes() {
		alive[n] = true
	}
	best, bestFree := "", -1<<30
	for _, sp := range co.cluster.NodeSpecs() {
		if !alive[sp.Name] || exclude[sp.Name] {
			continue
		}
		free := sp.Slots - load[sp.Name]
		if free > bestFree {
			best, bestFree = sp.Name, free
		}
	}
	if best == "" {
		return "", fmt.Errorf("recovery: no live replacement node available")
	}
	return best, nil
}

// planSource walks the source ladder for one rank. The returned plan's
// RestoreSpec points at the source location; stagePlans rewrites it to
// the staged copy for the two FILEM rungs.
func (co *Coordinator) planSource(j *runtime.Job, meta snapshot.GlobalMeta, interval int, cp snapshot.Copy, pe snapshot.ProcEntry, rank int, node string) (rankPlan, error) {
	c := co.cluster
	// Rung 1: the rank lands on the node that captured its state at this
	// interval, and the sealed local stage is still there — restore in
	// place, zero bytes moved. (True for every survivor of a KeepLocal
	// frontier; never for a lost rank, whose capture node is dead.)
	if node == pe.Node && c.Alive(node) {
		if fs, err := c.NodeFS(node); err == nil {
			base := snapc.LocalBaseDir(names.JobID(meta.JobID), interval)
			if vfs.Exists(fs, path.Join(base, snapshot.LocalCommittedFile)) {
				dir := path.Join(base, snapshot.LocalDirName(rank))
				if lm, err := snapshot.ReadLocal(snapshot.LocalRef{FS: fs, Dir: dir}); err == nil &&
					lm.Interval == interval && lm.JobID == meta.JobID && lm.Vpid == rank {
					return rankPlan{rank: rank, node: node, inPlace: true, source: "local",
						restore: &ompi.RestoreSpec{FS: fs, Dir: dir, Files: lm.Files}}, nil
				}
			}
		}
	}
	// Rung 2: a surviving node holds an intact replica of the interval;
	// the rank's local snapshot is staged node-to-node from it.
	replRoot := snapshot.ReplicaDir(j.GlobalDir(), interval)
	for _, holder := range c.AliveNodes() {
		fs, err := c.NodeFS(holder)
		if err != nil {
			continue
		}
		dir := path.Join(replRoot, pe.LocalDir)
		lm, err := snapshot.ReadLocal(snapshot.LocalRef{FS: fs, Dir: dir})
		if err != nil || lm.Interval != interval || lm.JobID != meta.JobID || lm.Vpid != rank {
			continue
		}
		return rankPlan{rank: rank, node: node, source: "replica:" + holder,
			restore: &ompi.RestoreSpec{Dir: dir, Files: lm.Files}}, nil
	}
	// Rung 3: the primary on stable storage — or, when the primary is the
	// copy that failed verification, the intact copy the resolver found.
	var lref snapshot.LocalRef
	if cp.Primary() {
		lref = snapshot.LocalRefIn(snapshot.GlobalRef{FS: c.Stable(), Dir: j.GlobalDir()}, interval, pe)
	} else {
		lref = snapshot.LocalRef{FS: cp.FS, Dir: path.Join(cp.Dir, pe.LocalDir)}
	}
	lm, err := snapshot.ReadLocal(lref)
	if err != nil {
		return rankPlan{}, fmt.Errorf("recovery: rank %d has no restorable copy at interval %d: %w", rank, interval, err)
	}
	return rankPlan{rank: rank, node: node, source: "stable",
		restore: &ompi.RestoreSpec{Dir: lref.Dir, Files: lm.Files}}, nil
}

// stagePlans executes the FILEM transfers the plans require: replica
// and stable sources are staged onto the target node's scratch space,
// and each plan's RestoreSpec is rewritten to point at the staged copy.
// In-place plans move nothing.
func (co *Coordinator) stagePlans(j *runtime.Job, s *runtime.RecoverySession, attempt, interval int, plans []rankPlan) error {
	c := co.cluster
	fcomp, fenv := c.Filem()
	for i := range plans {
		p := &plans[i]
		if p.inPlace {
			co.ins.Counter("ompi_recovery_source_local_total").Inc()
			continue
		}
		select {
		case <-s.Aborted():
			return s.AbortErr()
		default:
		}
		srcNode := filem.StableNode
		srcCounter := "ompi_recovery_source_stable_total"
		if holder, ok := replicaHolder(p.source); ok {
			srcNode = holder
			srcCounter = "ompi_recovery_source_replica_total"
		}
		dst := fmt.Sprintf("tmp/recover/job%d/iv%d-a%d/%s",
			j.JobID(), interval, attempt, snapshot.LocalDirName(p.rank))
		st, err := fcomp.Move(fenv, []filem.Request{{
			SrcNode: srcNode, SrcPath: p.restore.Dir,
			DstNode: p.node, DstPath: dst,
		}})
		if err != nil {
			return &stageError{node: p.node, err: fmt.Errorf("stage rank %d from %s: %w", p.rank, p.source, err)}
		}
		fs, err := c.NodeFS(p.node)
		if err != nil {
			return &stageError{node: p.node, err: err}
		}
		p.restore.FS = fs
		p.restore.Dir = dst
		p.bytes = st.Bytes
		co.ins.Counter("ompi_recovery_restored_bytes_total").Add(st.Bytes)
		co.ins.Counter(srcCounter).Inc()
		co.mu.Lock()
		co.stats.RestoredBytes += st.Bytes
		co.mu.Unlock()
	}
	return nil
}

// replicaHolder extracts the holder node from a "replica:<node>" source.
func replicaHolder(source string) (string, bool) {
	const pfx = "replica:"
	if len(source) > len(pfx) && source[:len(pfx)] == pfx {
		return source[len(pfx):], true
	}
	return "", false
}

// report is one rank's arrival at the re-knit rendezvous.
type report struct {
	rank      int
	bookmarks []byte
	err       error
}

// rendezvous carries one attempt's re-knit channels: ranks deliver
// their restored bookmark state on ready and park on their release
// channel for the session verdict.
type rendezvous struct {
	ready    chan report
	releases []chan error
}

func newRendezvous(np int) *rendezvous {
	rv := &rendezvous{ready: make(chan report, np), releases: make([]chan error, np)}
	for r := range rv.releases {
		rv.releases[r] = make(chan error, 1)
	}
	return rv
}

// gateFn builds the rendezvous closure a rank reports through: deliver
// the restored bookmarks, park until the coordinator's verdict.
func (co *Coordinator) gateFn(s *runtime.RecoverySession, rv *rendezvous, rank int) func([]byte, error) error {
	return func(bm []byte, rerr error) error {
		select {
		case rv.ready <- report{rank: rank, bookmarks: bm, err: rerr}:
		case <-s.Aborted():
			return s.AbortErr()
		}
		select {
		case err := <-rv.releases[rank]:
			return err
		case <-s.Aborted():
			return s.AbortErr()
		}
	}
}

// respawn rebuilds the job fabric, pre-attaches the surviving ranks
// (their ports travel in the recovery orders), and relaunches each lost
// rank on its replacement node, gated on the session rendezvous.
func (co *Coordinator) respawn(j *runtime.Job, s *runtime.RecoverySession, rv *rendezvous, plans []rankPlan, lostSet map[int]bool) (btl.JobFabric, map[int]btl.Port, error) {
	fab, err := j.RebuildFabric()
	if err != nil {
		return nil, nil, fmt.Errorf("recovery: rebuild fabric: %w", err)
	}
	ports := make(map[int]btl.Port)
	for _, p := range plans {
		if lostSet[p.rank] {
			continue
		}
		port, err := fab.Attach(p.rank)
		if err != nil {
			return fab, nil, fmt.Errorf("recovery: attach survivor %d: %w", p.rank, err)
		}
		ports[p.rank] = port
	}
	for _, p := range plans {
		if !lostSet[p.rank] {
			continue
		}
		if err := j.RespawnRank(p.rank, p.node, fab, p.restore, co.gateFn(s, rv, p.rank)); err != nil {
			return fab, nil, &stageError{node: p.node, err: fmt.Errorf("respawn rank %d: %w", p.rank, err)}
		}
		co.ins.Emit("recovery", "recovery.respawn",
			"job %d rank %d on %q from %s", j.JobID(), p.rank, p.node, p.source)
	}
	return fab, ports, nil
}

// reknit delivers recovery orders to the parked survivors, waits for
// all np ranks (survivors and respawns) to report their restored
// bookmark state, verifies the pairwise channel counts, completes the
// session, and releases everyone.
func (co *Coordinator) reknit(j *runtime.Job, s *runtime.RecoverySession, rv *rendezvous, plans []rankPlan, lostSet map[int]bool, interval int, fab btl.JobFabric, ports map[int]btl.Port) error {
	np := j.NumProcs()
	failed := &ompi.RankFailedError{Ranks: s.Lost(), Node: s.Node(), Planned: s.Planned()}
	for _, p := range plans {
		if lostSet[p.rank] {
			continue
		}
		s.Deliver(p.rank, &ompi.RecoverOrder{
			Interval: interval,
			Port:     ports[p.rank],
			Restore:  p.restore,
			Failed:   failed,
			Report:   co.gateFn(s, rv, p.rank),
		})
	}

	timeout := j.Params().Duration("recovery_ready_timeout", 15*time.Second)
	deadline := time.After(timeout)
	reports := make(map[int]report, np)
	for len(reports) < np {
		select {
		case rep := <-rv.ready:
			reports[rep.rank] = rep
		case <-s.Aborted():
			return s.AbortErr()
		case <-deadline:
			err := fmt.Errorf("recovery: only %d/%d ranks reported within %v", len(reports), np, timeout)
			co.releaseAll(rv, err)
			return err
		}
	}

	if err := co.verify(reports); err != nil {
		co.releaseAll(rv, err)
		return err
	}

	sources := make(map[int]string, np)
	for _, p := range plans {
		label := "recovered:" + p.source
		if s.Planned() && lostSet[p.rank] {
			label = "migrated:" + p.source
		}
		sources[p.rank] = label
	}
	// Complete before releasing: when the first released rank resumes
	// stepping, the job's fabric, placement and rank states must already
	// describe the rebuilt world.
	j.CompleteRecovery(fab, interval, sources)
	co.releaseAll(rv, nil)
	return nil
}

// releaseAll delivers the session verdict to every parked rank.
func (co *Coordinator) releaseAll(rv *rendezvous, err error) {
	for _, ch := range rv.releases {
		select {
		case ch <- err:
		default:
		}
	}
}

// verify checks that every rank restored cleanly and that the restored
// CRCP bookmark state is pairwise consistent: what rank i's protocol
// believes it sent to j must equal what j believes it received from i.
// Protocols that keep no channel state (crcp=none) report nil bookmarks
// and are exempt — the frontier is fully quiesced by construction.
func (co *Coordinator) verify(reports map[int]report) error {
	for r, rep := range reports {
		if rep.err != nil {
			return fmt.Errorf("recovery: rank %d restore failed: %w", r, rep.err)
		}
	}
	sent := make(map[int]map[int]uint64, len(reports))
	recvd := make(map[int]map[int]uint64, len(reports))
	for r, rep := range reports {
		s, rcv, ok := crcp.DecodeBookmarks(rep.bookmarks)
		if !ok {
			continue
		}
		sent[r], recvd[r] = s, rcv
	}
	for i, si := range sent {
		for jr, n := range si {
			rj, ok := recvd[jr]
			if !ok {
				continue
			}
			if rj[i] != n {
				return fmt.Errorf("recovery: bookmark mismatch: rank %d sent %d to rank %d, which received %d",
					i, n, jr, rj[i])
			}
		}
	}
	return nil
}
