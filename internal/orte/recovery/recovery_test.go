package recovery_test

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/faultsim"
	"repro/internal/mca"
	"repro/internal/ompi"
	"repro/internal/orte/runtime"
	"repro/internal/orte/snapc"
	"repro/internal/trace"
)

// slowApp wraps an application with a per-step delay so tests can
// checkpoint and kill nodes while the job is reliably mid-flight.
type slowApp struct {
	inner ompi.App
	delay time.Duration
}

func (a *slowApp) Setup(p *ompi.Proc) error { return a.inner.Setup(p) }
func (a *slowApp) Step(p *ompi.Proc) (bool, error) {
	time.Sleep(a.delay)
	return a.inner.Step(p)
}

// slowStencil builds a stencil factory with a per-step delay.
func slowStencil(t *testing.T, steps int, delay time.Duration) func(rank int) ompi.App {
	t.Helper()
	inner, err := apps.Lookup("stencil", []string{"-steps", itoa(steps), "-cells", "8"})
	if err != nil {
		t.Fatalf("stencil factory: %v", err)
	}
	return func(rank int) ompi.App { return &slowApp{inner: inner(rank), delay: delay} }
}

func itoa(n int) string { return strconv.Itoa(n) }

// newSystem boots a test cluster.
func newSystem(t *testing.T, nodes, slots int, params *mca.Params, faults *faultsim.Injector) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Options{
		Nodes: nodes, SlotsPerNode: slots,
		Params: params, Ins: trace.New(), Faults: faults,
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	t.Cleanup(sys.Close)
	return sys
}

// oracleState runs the same application fault-free and returns each
// rank's final stencil state, the reference recovered runs must match.
func oracleState(t *testing.T, np, steps int) []apps.StencilApp {
	t.Helper()
	sys := newSystem(t, np+1, 2, nil, nil)
	factory := slowStencil(t, steps, 0)
	j, err := sys.Launch(core.JobSpec{Name: "oracle", NP: np, AppFactory: factory})
	if err != nil {
		t.Fatalf("oracle launch: %v", err)
	}
	if err := j.Wait(); err != nil {
		t.Fatalf("oracle run: %v", err)
	}
	out := make([]apps.StencilApp, np)
	for r := 0; r < np; r++ {
		out[r] = *j.App(r).(*slowApp).inner.(*apps.StencilApp)
	}
	return out
}

// requireStencilEqual compares a finished job's per-rank stencil state
// to the oracle's.
func requireStencilEqual(t *testing.T, j *core.Job, want []apps.StencilApp) {
	t.Helper()
	for r := range want {
		got := j.App(r).(*slowApp).inner.(*apps.StencilApp)
		if got.State.Iter != want[r].State.Iter {
			t.Fatalf("rank %d: iter %d, oracle %d", r, got.State.Iter, want[r].State.Iter)
		}
		for i, v := range want[r].State.Cell {
			if got.State.Cell[i] != v {
				t.Fatalf("rank %d cell %d: %g, oracle %g", r, i, got.State.Cell[i], v)
			}
		}
	}
}

func TestInJobRecoveryAfterNodeLoss(t *testing.T) {
	const np, steps = 4, 1200
	want := oracleState(t, np, steps)

	sys := newSystem(t, np+1, 1, nil, nil)
	factory := slowStencil(t, steps, 100*time.Microsecond)
	j, err := sys.Launch(core.JobSpec{Name: "stencil", NP: np, AppFactory: factory})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	co := sys.Recovery()
	j.SetRecoveryHandler(co)
	survivorApps := make(map[int]ompi.App)
	for r := 0; r < np; r++ {
		survivorApps[r] = j.App(r)
	}

	// Pin a recovery frontier with intact node-local stages, then lose
	// the node hosting rank 2 while the job is mid-flight.
	if _, err := sys.Cluster().CheckpointJob(j.JobID(), snapc.Options{KeepLocal: true}); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	victim := j.NodeOf(2)
	if err := sys.Cluster().KillNode(victim); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	if err := j.Wait(); err != nil {
		t.Fatalf("job did not survive node loss: %v", err)
	}

	st := co.Stats()
	if st.Sessions != 1 || st.RecoveredRanks != 1 || st.Fallbacks != 0 {
		t.Fatalf("stats = %+v, want 1 session, 1 recovered rank, 0 fallbacks", st)
	}
	if st.RestoredBytes <= 0 {
		t.Fatalf("recovery restored %d bytes; lost rank must stage its image", st.RestoredBytes)
	}

	// Survivors kept their process slots: the same application instances
	// finished the run (nobody was restarted whole).
	for r := 0; r < np; r++ {
		if r == 2 {
			if j.App(r) == survivorApps[r] {
				t.Fatalf("rank 2 was lost but kept its old app instance")
			}
			continue
		}
		if j.App(r) != survivorApps[r] {
			t.Fatalf("survivor rank %d was restarted (app instance replaced)", r)
		}
	}

	// The per-rank view records the rebuild: survivors rolled back in
	// place from their sealed local stages, the lost rank restored from
	// stable storage onto a replacement node.
	for _, ri := range j.RankTable() {
		switch ri.Rank {
		case 2:
			if ri.Node == victim {
				t.Fatalf("rank 2 still placed on dead node %q", victim)
			}
			if !strings.HasPrefix(ri.Source, "recovered:") || ri.Source == "recovered:local" {
				t.Fatalf("rank 2 source = %q, want a staged recovered source", ri.Source)
			}
		default:
			if ri.Source != "recovered:local" {
				t.Fatalf("survivor rank %d source = %q, want recovered:local", ri.Rank, ri.Source)
			}
		}
		if ri.State != runtime.RankDone {
			t.Fatalf("rank %d state = %q after completion", ri.Rank, ri.State)
		}
	}

	// Recovered run converges to the fault-free oracle's exact state.
	requireStencilEqual(t, j, want)

	// In-place survivor restores must not have been counted as staged
	// sources.
	ins := sys.Ins()
	if n := ins.Counter("ompi_recovery_source_local_total").Value(); n != int64(np-1) {
		t.Fatalf("local-source restores = %d, want %d", n, np-1)
	}
}

func TestMigrationMovesRankWithoutRestart(t *testing.T) {
	const np, steps = 3, 1200
	want := oracleState(t, np, steps)

	sys := newSystem(t, np+1, 1, nil, nil)
	factory := slowStencil(t, steps, 100*time.Microsecond)
	j, err := sys.Launch(core.JobSpec{Name: "stencil", NP: np, AppFactory: factory})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	target := "node3" // the spare
	if j.NodeOf(1) == target {
		t.Fatalf("rank 1 already on spare node")
	}
	if err := sys.Migrate(j.JobID(), 1, target); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if got := j.NodeOf(1); got != target {
		t.Fatalf("rank 1 on %q after migration, want %q", got, target)
	}
	// Migrating a rank to where it already runs is a no-op.
	if err := sys.Migrate(j.JobID(), 1, target); err != nil {
		t.Fatalf("idempotent migrate: %v", err)
	}
	if err := j.Wait(); err != nil {
		t.Fatalf("job failed after migration: %v", err)
	}
	st := sys.Recovery().Stats()
	if st.Migrations != 1 || st.Fallbacks != 0 {
		t.Fatalf("stats = %+v, want 1 migration, 0 fallbacks", st)
	}
	var row runtime.RankInfo
	for _, ri := range j.RankTable() {
		if ri.Rank == 1 {
			row = ri
		}
	}
	if row.State != runtime.RankMigrated {
		t.Fatalf("rank 1 state = %q, want migrated", row.State)
	}
	if !strings.HasPrefix(row.Source, "migrated:") {
		t.Fatalf("rank 1 source = %q, want migrated:*", row.Source)
	}
	requireStencilEqual(t, j, want)

	// Migrating a finished job must fail cleanly.
	if err := sys.Migrate(j.JobID(), 0, target); err == nil {
		t.Fatalf("migrating a finished job succeeded")
	}
}

func TestRecoveryRetriesAlternateReplacementNode(t *testing.T) {
	const np, steps = 3, 1500
	// Every staging transfer onto the first-choice replacement fails —
	// enough times to exhaust FILEM's own retry budget — so the
	// coordinator must exclude that node and converge on the other spare.
	inj := faultsim.New(3,
		faultsim.Rule{Point: "filem.transfer:#stable>node3", Times: 8, Prob: 1},
	)
	sys := newSystem(t, np+2, 1, nil, inj)
	factory := slowStencil(t, steps, 100*time.Microsecond)
	j, err := sys.Launch(core.JobSpec{Name: "stencil", NP: np, AppFactory: factory})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	co := sys.Recovery()
	j.SetRecoveryHandler(co)
	if _, err := sys.Cluster().CheckpointJob(j.JobID(), snapc.Options{KeepLocal: true}); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := sys.Cluster().KillNode(j.NodeOf(0)); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	if err := j.Wait(); err != nil {
		t.Fatalf("job did not converge after staging failure: %v", err)
	}
	st := co.Stats()
	if st.Retries == 0 {
		t.Fatalf("stats = %+v, want at least one retry", st)
	}
	if st.Fallbacks != 0 || st.RecoveredRanks != 1 {
		t.Fatalf("stats = %+v, want retry-then-converge without fallback", st)
	}
}

func TestQuorumLossFallsBackToWholeJobRestart(t *testing.T) {
	const np, steps = 4, 1200
	want := oracleState(t, np, steps)

	// Two ranks per node: losing one node loses half the job — at or
	// below the 50% survivor quorum, so in-job recovery must refuse and
	// Supervise must restart the whole job from the last checkpoint.
	sys := newSystem(t, 3, 2, nil, nil)
	factory := slowStencil(t, steps, 100*time.Microsecond)
	j, err := sys.Launch(core.JobSpec{Name: "stencil", NP: np, AppFactory: factory})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	done := make(chan struct{})
	var rep core.SuperviseReport
	var serr error
	go func() {
		defer close(done)
		rep, serr = sys.Supervise(j, factory, core.SuperviseOptions{
			CheckpointEvery: 20 * time.Millisecond,
			Recovery:        core.Recovery{Policy: core.RecoverInJob, AutoRestart: 1},
		})
	}()
	// Let at least one checkpoint commit, then take out a node hosting
	// two ranks.
	waitForCounter(t, sys.Ins(), "ompi_snapc_intervals_committed_total", 1, 5*time.Second)
	if err := sys.Cluster().KillNode(j.NodeOf(0)); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	<-done
	if serr != nil {
		t.Fatalf("Supervise: %v", serr)
	}
	if rep.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1 (whole-job fallback)", rep.Restarts)
	}
	if rep.InJobRecovery.Fallbacks != 1 {
		t.Fatalf("InJobRecovery = %+v, want exactly one fallback", rep.InJobRecovery)
	}
	if rep.InJobRecovery.RecoveredRanks != 0 {
		t.Fatalf("InJobRecovery = %+v, want no in-job recoveries", rep.InJobRecovery)
	}
	cur, err := sys.Job(sys.JobIDs()[len(sys.JobIDs())-1])
	if err != nil {
		t.Fatalf("restarted job: %v", err)
	}
	requireStencilEqual(t, cur, want)
}

func TestSecondNodeLossDuringRecoveryFallsBack(t *testing.T) {
	const np, steps = 4, 1500
	sys := newSystem(t, 5, 2, nil, nil)
	factory := slowStencil(t, steps, 100*time.Microsecond)
	j, err := sys.Launch(core.JobSpec{Name: "stencil", NP: np, AppFactory: factory})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	done := make(chan struct{})
	var rep core.SuperviseReport
	var serr error
	go func() {
		defer close(done)
		rep, serr = sys.Supervise(j, factory, core.SuperviseOptions{
			CheckpointEvery: 20 * time.Millisecond,
			Recovery:        core.Recovery{Policy: core.RecoverInJob, AutoRestart: 1},
		})
	}()
	waitForCounter(t, sys.Ins(), "ompi_snapc_intervals_committed_total", 1, 5*time.Second)
	// Two nodes die in the same sweep: the first freeze starts a
	// session, the second death aborts it — the only safe answer is the
	// whole-job ladder.
	if err := sys.Cluster().KillNode(j.NodeOf(0)); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	if err := sys.Cluster().KillNode(j.NodeOf(1)); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	<-done
	if serr != nil {
		t.Fatalf("Supervise: %v", serr)
	}
	if rep.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", rep.Restarts)
	}
	if rep.InJobRecovery.Fallbacks < 1 {
		t.Fatalf("InJobRecovery = %+v, want a fallback", rep.InJobRecovery)
	}
}

// TestInJobRecoveryRestoresFewerBytes is the headline economics claim
// at 16 ranks: recovering one lost rank in-job stages only that rank's
// image, while a whole-job restart re-stages every rank from stable
// storage — at least 4x (here ~16x) more restored bytes.
func TestInJobRecoveryRestoresFewerBytes(t *testing.T) {
	const np, steps = 16, 600

	// Whole-job baseline: checkpoint, lose a node, supervisor restarts
	// everything from stable storage.
	whole := newSystem(t, 9, 2, nil, nil)
	factory := slowStencil(t, steps, 100*time.Microsecond)
	jw, err := whole.Launch(core.JobSpec{Name: "stencil", NP: np, AppFactory: factory})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	done := make(chan struct{})
	var rep core.SuperviseReport
	var serr error
	go func() {
		defer close(done)
		rep, serr = whole.Supervise(jw, factory, core.SuperviseOptions{
			CheckpointEvery: 20 * time.Millisecond,
			Recovery:        core.Recovery{AutoRestart: 1},
		})
	}()
	waitForCounter(t, whole.Ins(), "ompi_snapc_intervals_committed_total", 1, 5*time.Second)
	if err := whole.Cluster().KillNode(jw.NodeOf(0)); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	<-done
	if serr != nil || rep.Restarts != 1 {
		t.Fatalf("whole-job baseline: err=%v report=%+v", serr, rep)
	}
	restartBytes := whole.Ins().Counter("ompi_restart_restored_bytes_total").Value()
	if restartBytes <= 0 {
		t.Fatalf("whole-job restart restored %d bytes", restartBytes)
	}

	// In-job run: same workload, same loss, one rank staged.
	injob := newSystem(t, np+1, 1, nil, nil)
	ji, err := injob.Launch(core.JobSpec{Name: "stencil", NP: np, AppFactory: factory})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	co := injob.Recovery()
	ji.SetRecoveryHandler(co)
	if _, err := injob.Cluster().CheckpointJob(ji.JobID(), snapc.Options{KeepLocal: true}); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := injob.Cluster().KillNode(ji.NodeOf(0)); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	if err := ji.Wait(); err != nil {
		t.Fatalf("in-job run: %v", err)
	}
	if st := co.Stats(); st.RecoveredRanks != 1 || st.Fallbacks != 0 {
		t.Fatalf("in-job stats = %+v", st)
	}
	recovBytes := injob.Ins().Counter("ompi_recovery_restored_bytes_total").Value()
	if recovBytes <= 0 {
		t.Fatalf("in-job recovery restored %d bytes", recovBytes)
	}
	if restartBytes < 4*recovBytes {
		t.Fatalf("whole-job restored %d bytes, in-job %d: want >= 4x savings", restartBytes, recovBytes)
	}
	t.Logf("restored bytes: whole-job %d, in-job %d (%.1fx)", restartBytes, recovBytes,
		float64(restartBytes)/float64(recovBytes))
}

// TestNodeLossDuringQuiesceWindow kills a node while a checkpoint's
// quiesce phase is in flight. The capture aborts (parked survivors are
// not checkpointable), the in-job session recovers from the previous
// committed interval, and the run still converges to the fault-free
// oracle.
func TestNodeLossDuringQuiesceWindow(t *testing.T) {
	const np, steps = 4, 400
	want := oracleState(t, np, steps)

	sys := newSystem(t, np+1, 1, nil, nil)
	factory := slowStencil(t, steps, 2*time.Millisecond)
	j, err := sys.Launch(core.JobSpec{Name: "stencil", NP: np, AppFactory: factory})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	co := sys.Recovery()
	j.SetRecoveryHandler(co)
	if _, err := sys.Cluster().CheckpointJob(j.JobID(), snapc.Options{KeepLocal: true}); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	victim := j.NodeOf(1)

	// Run the second checkpoint from a helper goroutine and kill the
	// victim the moment its capture request goes out — inside the
	// quiesce window, long before the slow ranks reach the boundary.
	ckErr := make(chan error, 1)
	go func() {
		_, err := sys.Cluster().CheckpointJob(j.JobID(), snapc.Options{KeepLocal: true})
		ckErr <- err
	}()
	waitForEvent(t, sys.Ins(), "ckpt.request", 2, 5*time.Second)
	if err := sys.Cluster().KillNode(victim); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	// The interrupted checkpoint may fail (capture torn by the freeze) or
	// squeak through if every rank quiesced first; both must converge.
	if err := <-ckErr; err != nil {
		t.Logf("checkpoint during kill failed as expected: %v", err)
	}
	if err := j.Wait(); err != nil {
		t.Fatalf("job did not survive quiesce-window node loss: %v", err)
	}
	st := co.Stats()
	if st.Sessions != 1 || st.Fallbacks != 0 {
		t.Fatalf("stats = %+v, want one clean in-job session", st)
	}
	requireStencilEqual(t, j, want)
}

// TestNodeLossBetweenLocalCommitAndDrain kills a node in the window
// after every rank sealed its local stage (the async capture returned)
// but before the background drain committed the interval to stable
// storage. Recovery must resolve the torn drain and restore from
// whichever frontier survived.
func TestNodeLossBetweenLocalCommitAndDrain(t *testing.T) {
	const np, steps = 4, 400
	want := oracleState(t, np, steps)

	sys := newSystem(t, np+1, 1, nil, nil)
	factory := slowStencil(t, steps, 2*time.Millisecond)
	j, err := sys.Launch(core.JobSpec{Name: "stencil", NP: np, AppFactory: factory})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	co := sys.Recovery()
	j.SetRecoveryHandler(co)
	// Interval 0: fully committed, the guaranteed-good frontier.
	if _, err := sys.Cluster().CheckpointJob(j.JobID(), snapc.Options{KeepLocal: true}); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Interval 1: capture returns with LOCAL_COMMITTED everywhere and the
	// drain queued; the node dies while that drain races.
	if _, err := sys.Cluster().CheckpointJobAsync(j.JobID(), snapc.Options{KeepLocal: true}); err != nil {
		t.Fatalf("async checkpoint: %v", err)
	}
	if err := sys.Cluster().KillNode(j.NodeOf(2)); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	if err := j.Wait(); err != nil {
		t.Fatalf("job did not survive mid-drain node loss: %v", err)
	}
	st := co.Stats()
	if st.Sessions != 1 || st.Fallbacks != 0 || st.RecoveredRanks != 1 {
		t.Fatalf("stats = %+v, want one clean in-job session", st)
	}
	requireStencilEqual(t, j, want)
}

// waitForEvent polls the trace log until kind has been emitted at least
// want times.
func waitForEvent(t *testing.T, ins *trace.Instrumentation, kind string, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		n := 0
		for _, ev := range ins.Log.Events() {
			if ev.Kind == kind {
				n++
			}
		}
		if n >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("event %q seen %d times, want %d", kind, n, want)
		}
		time.Sleep(500 * time.Microsecond)
	}
}

// waitForCounter polls an instrumentation counter until it reaches at
// least want.
func waitForCounter(t *testing.T, ins *trace.Instrumentation, name string, want int64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for ins.Counter(name).Value() < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter %s never reached %d (at %d)", name, want, ins.Counter(name).Value())
		}
		time.Sleep(time.Millisecond)
	}
}
