// Package plm is the ORTE Process Lifecycle Management framework: the
// launch service that decides where each process of a job runs. The
// paper cites process launch as the canonical MCA example ("SLURM and
// RSH components of the process launch framework"); we reproduce the
// framework shape with two placement components so launch policy is
// runtime-swappable like everything else:
//
//   - rr: round-robin ("by node") placement, orted-spawn style;
//   - slurmsim: block ("by slot") placement, batch-scheduler style;
//   - loadaware: least-loaded placement across concurrent jobs, for
//     multi-job clusters where fresh launches and restarts should land
//     away from nodes already crowded with other jobs' ranks.
//
// Placement matters to the C/R work because restart may map the same
// ranks onto a different topology (paper §6.3: the PML "reconnects peers
// when restarting in new process topologies"); experiment A4 uses these
// components to produce the alternative mappings.
package plm

import (
	"fmt"

	"repro/internal/mca"
)

// FrameworkName is the MCA selection parameter for this framework.
const FrameworkName = "plm"

// NodeSpec describes one machine available to the launcher.
type NodeSpec struct {
	Name  string
	Slots int // process slots (cores); must be >= 1
	// Load is the number of ranks other jobs are already running on the
	// node. Only the loadaware component consults it; rr and slurmsim
	// place purely positionally. It does not consume Slots — the
	// simulated nodes oversubscribe freely — it only biases placement.
	Load int
}

// Component maps the ranks of a job onto nodes.
type Component interface {
	mca.Component
	// MapProcs returns a rank -> node-name placement for nprocs ranks.
	MapProcs(nprocs int, nodes []NodeSpec) (map[int]string, error)
}

// NewFramework returns the PLM framework with the built-in components
// registered: rr (default) and slurmsim.
func NewFramework() *mca.Framework[Component] {
	f := mca.NewFramework[Component](FrameworkName)
	f.MustRegister(&RoundRobin{})
	f.MustRegister(&SlurmSim{})
	f.MustRegister(&LoadAware{})
	return f
}

func validate(nprocs int, nodes []NodeSpec) (totalSlots int, err error) {
	if nprocs <= 0 {
		return 0, fmt.Errorf("plm: nprocs must be positive, got %d", nprocs)
	}
	if len(nodes) == 0 {
		return 0, fmt.Errorf("plm: no nodes available")
	}
	for _, n := range nodes {
		if n.Name == "" {
			return 0, fmt.Errorf("plm: node with empty name")
		}
		if n.Slots < 1 {
			return 0, fmt.Errorf("plm: node %q has %d slots", n.Name, n.Slots)
		}
		totalSlots += n.Slots
	}
	if nprocs > totalSlots {
		return 0, fmt.Errorf("plm: job needs %d slots but the allocation has %d", nprocs, totalSlots)
	}
	return totalSlots, nil
}

// RoundRobin places ranks across nodes one at a time ("map by node"),
// wrapping until slots are exhausted.
type RoundRobin struct{}

// Name implements mca.Component.
func (*RoundRobin) Name() string { return "rr" }

// Priority implements mca.Component.
func (*RoundRobin) Priority() int { return 20 }

// MapProcs implements Component.
func (*RoundRobin) MapProcs(nprocs int, nodes []NodeSpec) (map[int]string, error) {
	if _, err := validate(nprocs, nodes); err != nil {
		return nil, err
	}
	used := make([]int, len(nodes))
	out := make(map[int]string, nprocs)
	rank := 0
	for rank < nprocs {
		placed := false
		for i := range nodes {
			if rank >= nprocs {
				break
			}
			if used[i] < nodes[i].Slots {
				out[rank] = nodes[i].Name
				used[i]++
				rank++
				placed = true
			}
		}
		if !placed {
			return nil, fmt.Errorf("plm rr: ran out of slots at rank %d", rank)
		}
	}
	return out, nil
}

var _ Component = (*RoundRobin)(nil)

// SlurmSim places ranks in node order, filling each node's slots before
// moving on ("map by slot"), the way a batch scheduler hands out a
// contiguous allocation.
type SlurmSim struct{}

// Name implements mca.Component.
func (*SlurmSim) Name() string { return "slurmsim" }

// Priority implements mca.Component.
func (*SlurmSim) Priority() int { return 10 }

// MapProcs implements Component.
func (*SlurmSim) MapProcs(nprocs int, nodes []NodeSpec) (map[int]string, error) {
	if _, err := validate(nprocs, nodes); err != nil {
		return nil, err
	}
	out := make(map[int]string, nprocs)
	rank := 0
	for _, n := range nodes {
		for s := 0; s < n.Slots && rank < nprocs; s++ {
			out[rank] = n.Name
			rank++
		}
	}
	return out, nil
}

var _ Component = (*SlurmSim)(nil)

// LoadAware places each rank on the node with the fewest total ranks —
// pre-existing Load from other jobs plus ranks this mapping has already
// assigned — among nodes with free slots. Ties break in declaration
// order, so an unloaded cluster degenerates to round-robin and the
// mapping stays deterministic. Selected with plm=loadaware; its low
// priority keeps rr the default.
type LoadAware struct{}

// Name implements mca.Component.
func (*LoadAware) Name() string { return "loadaware" }

// Priority implements mca.Component.
func (*LoadAware) Priority() int { return 5 }

// MapProcs implements Component.
func (*LoadAware) MapProcs(nprocs int, nodes []NodeSpec) (map[int]string, error) {
	if _, err := validate(nprocs, nodes); err != nil {
		return nil, err
	}
	used := make([]int, len(nodes))
	out := make(map[int]string, nprocs)
	for rank := 0; rank < nprocs; rank++ {
		best := -1
		for i := range nodes {
			if used[i] >= nodes[i].Slots {
				continue
			}
			if best < 0 || nodes[i].Load+used[i] < nodes[best].Load+used[best] {
				best = i
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("plm loadaware: ran out of slots at rank %d", rank)
		}
		out[rank] = nodes[best].Name
		used[best]++
	}
	return out, nil
}

var _ Component = (*LoadAware)(nil)
