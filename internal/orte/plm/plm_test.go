package plm

import (
	"testing"
	"testing/quick"
)

var fourNodes = []NodeSpec{
	{Name: "n0", Slots: 2},
	{Name: "n1", Slots: 2},
	{Name: "n2", Slots: 2},
	{Name: "n3", Slots: 2},
}

func TestFrameworkDefault(t *testing.T) {
	f := NewFramework()
	c, err := f.Select(nil)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if c.Name() != "rr" {
		t.Errorf("default = %q, want rr", c.Name())
	}
}

func TestRoundRobinSpreads(t *testing.T) {
	m, err := (&RoundRobin{}).MapProcs(4, fourNodes)
	if err != nil {
		t.Fatalf("MapProcs: %v", err)
	}
	want := map[int]string{0: "n0", 1: "n1", 2: "n2", 3: "n3"}
	for r, n := range want {
		if m[r] != n {
			t.Errorf("rank %d -> %q, want %q", r, m[r], n)
		}
	}
}

func TestRoundRobinWraps(t *testing.T) {
	m, err := (&RoundRobin{}).MapProcs(6, fourNodes)
	if err != nil {
		t.Fatalf("MapProcs: %v", err)
	}
	if m[4] != "n0" || m[5] != "n1" {
		t.Errorf("wrap = %v", m)
	}
}

func TestSlurmSimFills(t *testing.T) {
	m, err := (&SlurmSim{}).MapProcs(5, fourNodes)
	if err != nil {
		t.Fatalf("MapProcs: %v", err)
	}
	want := map[int]string{0: "n0", 1: "n0", 2: "n1", 3: "n1", 4: "n2"}
	for r, n := range want {
		if m[r] != n {
			t.Errorf("rank %d -> %q, want %q", r, m[r], n)
		}
	}
}

func TestPlacementsDiffer(t *testing.T) {
	// The two components must give experiment A4 genuinely different
	// mappings for the same job.
	a, err := (&RoundRobin{}).MapProcs(4, fourNodes[:2])
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&SlurmSim{}).MapProcs(4, fourNodes[:2])
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for r := 0; r < 4; r++ {
		if a[r] != b[r] {
			same = false
		}
	}
	if same {
		t.Errorf("rr and slurmsim produced identical placements: %v", a)
	}
}

func TestValidation(t *testing.T) {
	for _, comp := range []Component{&RoundRobin{}, &SlurmSim{}} {
		if _, err := comp.MapProcs(0, fourNodes); err == nil {
			t.Errorf("%s: accepted 0 procs", comp.Name())
		}
		if _, err := comp.MapProcs(1, nil); err == nil {
			t.Errorf("%s: accepted empty node list", comp.Name())
		}
		if _, err := comp.MapProcs(9, fourNodes); err == nil {
			t.Errorf("%s: oversubscribed the allocation", comp.Name())
		}
		if _, err := comp.MapProcs(1, []NodeSpec{{Name: "", Slots: 1}}); err == nil {
			t.Errorf("%s: accepted empty node name", comp.Name())
		}
		if _, err := comp.MapProcs(1, []NodeSpec{{Name: "x", Slots: 0}}); err == nil {
			t.Errorf("%s: accepted zero-slot node", comp.Name())
		}
	}
}

// TestQuickPlacementsComplete: every valid request yields a complete
// placement that respects slot capacities, for both components.
func TestQuickPlacementsComplete(t *testing.T) {
	comps := []Component{&RoundRobin{}, &SlurmSim{}}
	prop := func(npRaw uint8, slotsRaw []uint8) bool {
		if len(slotsRaw) == 0 || len(slotsRaw) > 8 {
			return true
		}
		var nodes []NodeSpec
		total := 0
		for i, s := range slotsRaw {
			slots := int(s%4) + 1
			total += slots
			nodes = append(nodes, NodeSpec{Name: string(rune('a' + i)), Slots: slots})
		}
		np := int(npRaw)%total + 1
		for _, comp := range comps {
			m, err := comp.MapProcs(np, nodes)
			if err != nil {
				return false
			}
			if len(m) != np {
				return false
			}
			counts := make(map[string]int)
			for r := 0; r < np; r++ {
				node, ok := m[r]
				if !ok {
					return false
				}
				counts[node]++
			}
			for _, n := range nodes {
				if counts[n.Name] > n.Slots {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestLoadAwareAvoidsLoadedNodes(t *testing.T) {
	nodes := []NodeSpec{
		{Name: "n0", Slots: 4, Load: 3},
		{Name: "n1", Slots: 4, Load: 0},
		{Name: "n2", Slots: 4, Load: 1},
		{Name: "n3", Slots: 4, Load: 0},
	}
	m, err := (&LoadAware{}).MapProcs(4, nodes)
	if err != nil {
		t.Fatalf("MapProcs: %v", err)
	}
	// n0 starts three ranks ahead of everyone else, so four placements
	// across the other three nodes never reach its load level.
	count := map[string]int{}
	for _, n := range m {
		count[n]++
	}
	if count["n0"] != 0 {
		t.Errorf("loadaware placed %d ranks on the most loaded node n0", count["n0"])
	}
	if count["n1"]+count["n2"]+count["n3"] != 4 {
		t.Errorf("placement incomplete: %v", m)
	}
}

func TestLoadAwareUnloadedIsRoundRobin(t *testing.T) {
	m, err := (&LoadAware{}).MapProcs(4, fourNodes)
	if err != nil {
		t.Fatalf("MapProcs: %v", err)
	}
	want := map[int]string{0: "n0", 1: "n1", 2: "n2", 3: "n3"}
	for r, n := range want {
		if m[r] != n {
			t.Errorf("rank %d -> %q, want %q", r, m[r], n)
		}
	}
}

func TestLoadAwareRespectsSlots(t *testing.T) {
	nodes := []NodeSpec{
		{Name: "n0", Slots: 1, Load: 0},
		{Name: "n1", Slots: 3, Load: 5},
	}
	m, err := (&LoadAware{}).MapProcs(4, nodes)
	if err != nil {
		t.Fatalf("MapProcs: %v", err)
	}
	count := map[string]int{}
	for _, n := range m {
		count[n]++
	}
	if count["n0"] != 1 || count["n1"] != 3 {
		t.Errorf("slot capacity violated: %v", count)
	}
}
