package sched

import (
	"testing"
)

func TestFIFOWithinFlow(t *testing.T) {
	q := New()
	for i := 0; i < 5; i++ {
		q.Push(Item{Key: "a", Cost: 10, Weight: 1, Payload: i})
	}
	for want := 0; want < 5; want++ {
		it, ok := q.Pop()
		if !ok {
			t.Fatalf("pop %d: queue unexpectedly ineligible", want)
		}
		if it.Payload.(int) != want {
			t.Fatalf("flow order violated: got %v want %d", it.Payload, want)
		}
		q.Done("a")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("empty queue must not dispatch")
	}
}

// One item per flow in service: a flow with a backlog must not get a
// second dispatch until Done.
func TestPerFlowSerialization(t *testing.T) {
	q := New()
	q.Push(Item{Key: "a", Cost: 1, Payload: "a1"})
	q.Push(Item{Key: "a", Cost: 1, Payload: "a2"})
	q.Push(Item{Key: "b", Cost: 1, Payload: "b1"})
	first, ok := q.Pop()
	if !ok {
		t.Fatal("expected dispatch")
	}
	second, ok := q.Pop()
	if !ok {
		t.Fatal("expected second flow's dispatch")
	}
	if first.Key == second.Key {
		t.Fatalf("dispatched two items of flow %q concurrently", first.Key)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("both flows busy: nothing should be eligible")
	}
	q.Done("a")
	third, ok := q.Pop()
	if !ok || third.Payload != "a2" {
		t.Fatalf("after Done(a) expected a2, got %v ok=%v", third.Payload, ok)
	}
}

// Weighted sharing: with equal per-item cost and both flows backlogged,
// a weight-3 flow should get ~3x the dispatches of a weight-1 flow.
func TestWeightedShare(t *testing.T) {
	q := New()
	for i := 0; i < 40; i++ {
		q.Push(Item{Key: "hi", Cost: 100, Weight: 3})
		q.Push(Item{Key: "lo", Cost: 100, Weight: 1})
	}
	counts := map[string]int{}
	// Single server: dispatch/complete 24 items and count the mix.
	for i := 0; i < 24; i++ {
		it, ok := q.Pop()
		if !ok {
			t.Fatalf("dispatch %d: nothing eligible", i)
		}
		counts[it.Key]++
		q.Done(it.Key)
	}
	if counts["hi"] < 16 || counts["hi"] > 20 {
		t.Fatalf("weight-3 flow got %d of 24 dispatches, want ~18 (3:1 share)", counts["hi"])
	}
}

// An idle flow gains no credit: after a long quiet spell it competes
// from the current virtual time, not from zero.
func TestNoIdleCredit(t *testing.T) {
	q := New()
	for i := 0; i < 10; i++ {
		q.Push(Item{Key: "busy", Cost: 100, Weight: 1})
	}
	for i := 0; i < 10; i++ {
		it, _ := q.Pop()
		q.Done(it.Key)
	}
	// Late arrival on a fresh flow, then one more on the busy flow.
	q.Push(Item{Key: "late", Cost: 100, Weight: 1})
	q.Push(Item{Key: "busy", Cost: 100, Weight: 1})
	it, ok := q.Pop()
	if !ok {
		t.Fatal("expected dispatch")
	}
	// The late flow must not be forced to "catch up" ten services, but
	// neither does it preempt retroactively: both heads carry start tags
	// at/after the current virtual time; the busy flow's start tag is its
	// last finish, so the late flow (stamped at V) goes first.
	if it.Key != "late" {
		t.Fatalf("late flow starved: dispatched %q first", it.Key)
	}
}

func TestDrainAllReturnsEverything(t *testing.T) {
	q := New()
	q.Push(Item{Key: "a", Cost: 5, Payload: 1})
	q.Push(Item{Key: "b", Cost: 5, Payload: 2})
	q.Push(Item{Key: "a", Cost: 5, Payload: 3})
	it, _ := q.Pop() // leave one flow busy
	got := q.DrainAll()
	if len(got) != 2 {
		t.Fatalf("DrainAll returned %d items, want 2 (1 in service)", len(got))
	}
	if q.Len() != 0 {
		t.Fatalf("Len after DrainAll = %d", q.Len())
	}
	q.Done(it.Key)
	if _, ok := q.Pop(); ok {
		t.Fatal("drained queue must not dispatch")
	}
}

func TestFlowsSnapshot(t *testing.T) {
	q := New()
	q.Push(Item{Key: "b", Cost: 7, Weight: 2})
	q.Push(Item{Key: "a", Cost: 3, Weight: 1})
	q.Push(Item{Key: "a", Cost: 4, Weight: 1})
	it, _ := q.Pop() // "a" or "b" depending on tags; a starts first (tie broken by key)
	fs := q.Flows()
	if len(fs) != 2 || fs[0].Key != "a" || fs[1].Key != "b" {
		t.Fatalf("Flows not key-sorted: %+v", fs)
	}
	var busyKey string
	for _, f := range fs {
		if f.Busy {
			busyKey = f.Key
		}
	}
	if busyKey != it.Key {
		t.Fatalf("busy flow %q, dispatched %q", busyKey, it.Key)
	}
	if fs[0].ServedCost+fs[1].ServedCost != it.Cost {
		t.Fatalf("served cost mismatch: %+v", fs)
	}
}

func TestClampsAndQueuedFor(t *testing.T) {
	q := New()
	q.Push(Item{Key: "z", Cost: 0, Weight: 0}) // clamped to 1/1
	if q.QueuedFor("z") != 1 || q.QueuedFor("missing") != 0 {
		t.Fatalf("QueuedFor wrong: z=%d missing=%d", q.QueuedFor("z"), q.QueuedFor("missing"))
	}
	it, ok := q.Pop()
	if !ok || it.Cost != 1 || it.Weight != 1 {
		t.Fatalf("clamping failed: %+v ok=%v", it, ok)
	}
	// Done on an unknown key is harmless.
	q.Done("missing")
}
