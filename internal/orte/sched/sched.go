// Package sched is the HNP's multi-job checkpoint scheduler: a
// start-time fair queuing (SFQ) discipline over per-flow FIFOs, used by
// the drain pipeline to rate-limit simultaneous drains so a checkpoint
// storm from one job cannot saturate stable-store ingress and starve
// its neighbors.
//
// Each flow is one checkpoint lineage (one job's global snapshot
// directory). Within a flow, order is strict FIFO and at most one item
// is in service at a time — the drain pipeline's invariant that a
// lineage's intervals commit in capture order is preserved by
// construction. Across flows, service is proportional to weight: each
// item is stamped with a virtual start tag max(V, flow's last finish)
// and a finish tag start + cost/weight; dispatch picks the eligible
// item with the smallest start tag and advances the virtual clock V to
// it. A flow with weight w receives a w-proportional share of drain
// bandwidth when backlogged, and an idle flow accumulates no credit
// (SFQ, unlike raw virtual-clock, does not punish a flow for having
// been quiet).
//
// The Queue is deliberately not self-synchronizing: the drain pipeline
// already serializes admission and dispatch under its own mutex, and a
// second lock here would only invite ordering bugs. Callers must hold
// their own lock around every method.
package sched

import "sort"

// Item is one schedulable unit of work.
type Item struct {
	// Key names the flow (checkpoint lineage) the item belongs to.
	Key string
	// Cost is the service demand in arbitrary units (bytes, for
	// drains); it is clamped to at least 1 so zero-byte intervals still
	// advance the virtual clock.
	Cost int64
	// Weight is the flow's QoS weight at enqueue time (clamped to at
	// least 1). Raising a flow's weight affects items enqueued after
	// the change.
	Weight int
	// Payload is the caller's work descriptor, returned by Pop.
	Payload any

	start, finish float64
}

// FlowState is one flow's introspection snapshot.
type FlowState struct {
	Key        string
	Weight     int   // weight of the most recently enqueued item
	Queued     int   // items waiting (excluding the one in service)
	Busy       bool  // an item of this flow is in service
	ServedCost int64 // total cost dispatched so far
	QueuedCost int64 // total cost waiting
}

type flow struct {
	items      []*Item
	lastFinish float64
	weight     int
	busy       bool
	served     int64
	queuedCost int64
}

// Queue is the SFQ scheduler state. The zero value is not usable; call
// New.
type Queue struct {
	flows map[string]*flow
	virt  float64
	size  int
}

// New returns an empty queue.
func New() *Queue {
	return &Queue{flows: make(map[string]*flow)}
}

// Len returns the number of queued (not yet dispatched) items.
func (q *Queue) Len() int { return q.size }

// Push enqueues an item at the tail of its flow, stamping its virtual
// tags from the current clock and the flow's service history.
func (q *Queue) Push(it Item) {
	if it.Cost < 1 {
		it.Cost = 1
	}
	if it.Weight < 1 {
		it.Weight = 1
	}
	f := q.flows[it.Key]
	if f == nil {
		f = &flow{}
		q.flows[it.Key] = f
	}
	f.weight = it.Weight
	it.start = q.virt
	if f.lastFinish > it.start {
		it.start = f.lastFinish
	}
	it.finish = it.start + float64(it.Cost)/float64(it.Weight)
	f.lastFinish = it.finish
	f.items = append(f.items, &it)
	f.queuedCost += it.Cost
	q.size++
}

// Pop dispatches the eligible item with the smallest virtual start tag
// (ties broken by key for determinism) and marks its flow busy. It
// returns ok=false when no flow is eligible — either the queue is empty
// or every backlogged flow already has an item in service; the caller
// waits for a Done or Push. The caller must call Done(item.Key) when
// service completes.
func (q *Queue) Pop() (Item, bool) {
	var best *flow
	bestKey := ""
	for key, f := range q.flows {
		if f.busy || len(f.items) == 0 {
			continue
		}
		head := f.items[0]
		if best == nil || head.start < best.items[0].start ||
			(head.start == best.items[0].start && key < bestKey) {
			best, bestKey = f, key
		}
	}
	if best == nil {
		return Item{}, false
	}
	it := best.items[0]
	best.items = best.items[1:]
	best.busy = true
	best.served += it.Cost
	best.queuedCost -= it.Cost
	q.size--
	if it.start > q.virt {
		q.virt = it.start
	}
	return *it, true
}

// ExpressPop dispatches the eligible head item whose weight strictly
// exceeds minWeight, preferring the heaviest (ties broken by smaller
// start tag, then key). It is the low-latency-queuing escape hatch on
// top of the fair order: Pop serves by virtual start tag regardless of
// weight, so a high-weight arrival can sit behind a backlog of earlier
// light items — ExpressPop lets a caller with spare express capacity
// pull it out. ok=false when no eligible head qualifies. The caller
// must call Done(item.Key) when service completes, exactly as for Pop.
func (q *Queue) ExpressPop(minWeight int) (Item, bool) {
	var best *flow
	bestKey := ""
	for key, f := range q.flows {
		if f.busy || len(f.items) == 0 {
			continue
		}
		head := f.items[0]
		if head.Weight <= minWeight {
			continue
		}
		if best == nil || head.Weight > best.items[0].Weight ||
			(head.Weight == best.items[0].Weight && (head.start < best.items[0].start ||
				(head.start == best.items[0].start && key < bestKey))) {
			best, bestKey = f, key
		}
	}
	if best == nil {
		return Item{}, false
	}
	it := best.items[0]
	best.items = best.items[1:]
	best.busy = true
	best.served += it.Cost
	best.queuedCost -= it.Cost
	q.size--
	if it.start > q.virt {
		q.virt = it.start
	}
	return *it, true
}

// Done marks the flow's in-service item complete, making its next item
// eligible for dispatch.
func (q *Queue) Done(key string) {
	if f := q.flows[key]; f != nil {
		f.busy = false
	}
}

// QueuedFor returns the number of waiting items in one flow.
func (q *Queue) QueuedFor(key string) int {
	if f := q.flows[key]; f != nil {
		return len(f.items)
	}
	return 0
}

// DrainAll removes and returns every queued item in dispatch-tag order,
// ignoring busy flags — used to fail pending work wholesale when the
// coordinator crashes. Flows' service history is preserved.
func (q *Queue) DrainAll() []Item {
	out := make([]Item, 0, q.size)
	for _, f := range q.flows {
		for _, it := range f.items {
			out = append(out, *it)
		}
		f.items = nil
		f.queuedCost = 0
	}
	q.size = 0
	sort.Slice(out, func(i, j int) bool {
		if out[i].start != out[j].start {
			return out[i].start < out[j].start
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Flows returns a deterministic (key-sorted) snapshot of every flow
// that has ever enqueued, for the control plane's scheduler view.
func (q *Queue) Flows() []FlowState {
	keys := make([]string, 0, len(q.flows))
	for k := range q.flows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]FlowState, 0, len(keys))
	for _, k := range keys {
		f := q.flows[k]
		out = append(out, FlowState{
			Key: k, Weight: f.weight, Queued: len(f.items),
			Busy: f.busy, ServedCost: f.served, QueuedCost: f.queuedCost,
		})
	}
	return out
}
