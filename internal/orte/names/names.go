// Package names provides ORTE process naming: every entity in the
// runtime — the HNP (mpirun), the per-node daemons (orteds) and the
// application processes — is addressed by a (job, vpid) pair. The paper's
// SNAPC coordinators and FILEM requests are routed between these names.
package names

import (
	"fmt"
	"sync"
)

// JobID identifies one parallel job. Job 0 is reserved for the runtime
// itself (HNP and daemons), matching ORTE's convention.
type JobID int

// DaemonJob is the reserved job id of runtime infrastructure processes.
const DaemonJob JobID = 0

// Vpid is a virtual process id within a job: the MPI rank for
// application processes, or a daemon index within the runtime job.
type Vpid int

// Name addresses one runtime entity.
type Name struct {
	Job  JobID
	Vpid Vpid
}

// String renders the name in ORTE's familiar "[job,vpid]" form.
func (n Name) String() string { return fmt.Sprintf("[%d,%d]", n.Job, n.Vpid) }

// HNP is the name of the head node process (mpirun).
var HNP = Name{Job: DaemonJob, Vpid: 0}

// Daemon returns the name of the orted with the given index (0-based);
// daemon vpids start at 1 because vpid 0 of the daemon job is the HNP.
func Daemon(index int) Name {
	return Name{Job: DaemonJob, Vpid: Vpid(index + 1)}
}

// Proc returns the name of rank vpid in job job.
func Proc(job JobID, vpid int) Name {
	return Name{Job: job, Vpid: Vpid(vpid)}
}

// IsDaemonName reports whether n belongs to the runtime job.
func (n Name) IsDaemonName() bool { return n.Job == DaemonJob }

// Service allocates job ids. Job ids begin at 1; 0 is the daemon job.
type Service struct {
	mu   sync.Mutex
	next JobID
}

// NewService returns a name service whose first allocated job id is 1.
func NewService() *Service {
	return &Service{next: 1}
}

// AllocateJob returns a fresh job id.
func (s *Service) AllocateJob() JobID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.next
	s.next++
	return id
}

// Reserve marks ids up to and including id as used, so a restarted
// runtime never re-issues a job id recorded in a snapshot.
func (s *Service) Reserve(id JobID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id >= s.next {
		s.next = id + 1
	}
}
