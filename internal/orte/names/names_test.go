package names

import (
	"sync"
	"testing"
)

func TestNameString(t *testing.T) {
	if got := HNP.String(); got != "[0,0]" {
		t.Errorf("HNP.String() = %q", got)
	}
	if got := Proc(3, 2).String(); got != "[3,2]" {
		t.Errorf("Proc(3,2).String() = %q", got)
	}
}

func TestDaemonNames(t *testing.T) {
	d0 := Daemon(0)
	if d0 == HNP {
		t.Error("Daemon(0) collides with HNP")
	}
	if !d0.IsDaemonName() {
		t.Error("Daemon(0) not in daemon job")
	}
	if d0.Vpid != 1 {
		t.Errorf("Daemon(0).Vpid = %d, want 1", d0.Vpid)
	}
	if Proc(1, 0).IsDaemonName() {
		t.Error("app proc reported as daemon")
	}
}

func TestServiceAllocatesUniqueIDs(t *testing.T) {
	s := NewService()
	seen := make(map[JobID]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id := s.AllocateJob()
				mu.Lock()
				if seen[id] {
					t.Errorf("job id %d allocated twice", id)
				}
				if id == DaemonJob {
					t.Errorf("daemon job id allocated to an application job")
				}
				seen[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != 200 {
		t.Errorf("allocated %d unique ids, want 200", len(seen))
	}
}

func TestServiceReserve(t *testing.T) {
	s := NewService()
	s.Reserve(41) // e.g. a job id read from a snapshot
	if id := s.AllocateJob(); id != 42 {
		t.Errorf("AllocateJob after Reserve(41) = %d, want 42", id)
	}
	s.Reserve(10) // reserving below the watermark is a no-op
	if id := s.AllocateJob(); id != 43 {
		t.Errorf("AllocateJob = %d, want 43", id)
	}
}
